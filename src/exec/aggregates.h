// AggState: incremental state of one aggregate call.
//
// Supports count(*) / count(x) / count(distinct x) / sum / avg / min /
// max with SQL NULL handling (non-star aggregates skip NULL inputs; an
// empty group yields NULL except count, which yields 0).
//
// States are mergeable, which enables Hadoop-combiner-style map-side
// partial aggregation (the Hive optimization the paper notes in footnote
// 2). count(distinct) cannot be combined losslessly by value counts, so
// its partial form carries the distinct set itself.
#pragma once

#include <set>
#include <span>
#include <string>

#include "common/prof_counters.h"
#include "common/value.h"
#include "plan/plan.h"

namespace ysmart {

class AggState {
 public:
  explicit AggState(const AggCall& call);

  /// Feed one input value (ignored content for star-count).
  void add(const Value& v);

  /// Typed add paths used by the vectorized kernels
  /// (exec/vector_kernels.cpp). Each is state- and counter-identical to
  /// add(Value{v}) — including one kAggUpdates count per call — but skips
  /// the variant construction and Value::compare dispatch (min/max use
  /// compare_int_double directly, so kCellCompares drops, which is
  /// expected: it is not part of the mode-reconciled counter set).
  void add_int(std::int64_t v);
  void add_double(double v);
  /// NULL input: counts the update, then skips (non-star semantics; the
  /// batch path never routes star-counts through the typed adds).
  void add_null();

  void merge(const AggState& other);

  Value result() const;

  // ---- partial (combiner) serialization ----
  /// Number of Values this state serializes into. Distinct states are
  /// variable-length and return kVariableArity.
  static constexpr int kVariableArity = -1;
  int partial_arity() const;
  void to_partial(Row& out) const;
  /// Consume `partial_arity()` values from `in` (fixed-arity states only).
  void add_partial(std::span<const Value> in);

  const AggCall& call() const { return call_; }

 private:
  /// call_.func resolved once at construction; the add paths run per
  /// input row and must not re-compare strings.
  enum class Fn { Sum, Avg, Min, Max, Other };

  AggCall call_;
  Fn fn_ = Fn::Other;
  std::int64_t count_ = 0;
  double sum_ = 0;
  bool sum_all_int_ = true;
  std::int64_t isum_ = 0;
  Value min_;
  Value max_;
  std::set<Value> distinct_;
};

/// True if every aggregate of `agg` supports fixed-arity partials (i.e.
/// map-side partial aggregation is applicable).
bool combinable(const PlanNode& agg);

// The typed adds are inline: the batched aggregation loop calls one per
// (row, aggregate) and the call overhead is measurable at that rate.

inline void AggState::add_int(std::int64_t v) {
  prof::count(prof::kAggUpdates);
  if (call_.distinct) {
    distinct_.insert(Value{v});
    return;
  }
  ++count_;
  if (fn_ == Fn::Sum || fn_ == Fn::Avg) {
    sum_ += static_cast<double>(v);
    isum_ += v;
  } else if (fn_ == Fn::Min) {
    bool less;
    switch (min_.type()) {
      case ValueType::Null: less = true; break;
      case ValueType::Int: less = v < min_.as_int(); break;
      case ValueType::Double:
        less = compare_int_double(v, min_.as_double()) < 0;
        break;
      default: less = true; break;  // numeric ranks before string
    }
    if (less) min_ = Value{v};
  } else if (fn_ == Fn::Max) {
    bool greater;
    switch (max_.type()) {
      case ValueType::Null: greater = true; break;
      case ValueType::Int: greater = v > max_.as_int(); break;
      case ValueType::Double:
        greater = compare_int_double(v, max_.as_double()) > 0;
        break;
      default: greater = false; break;  // numeric ranks before string
    }
    if (greater) max_ = Value{v};
  }
}

inline void AggState::add_double(double v) {
  prof::count(prof::kAggUpdates);
  if (call_.distinct) {
    distinct_.insert(Value{v});
    return;
  }
  ++count_;
  if (fn_ == Fn::Sum || fn_ == Fn::Avg) {
    sum_ += v;
    sum_all_int_ = false;
  } else if (fn_ == Fn::Min) {
    bool less;
    switch (min_.type()) {
      case ValueType::Null: less = true; break;
      // NaN never tests < (Value::compare calls NaN "equal"), so
      // keep-first-on-tie is preserved either way.
      case ValueType::Double: less = v < min_.as_double(); break;
      case ValueType::Int:
        less = compare_int_double(min_.as_int(), v) > 0;
        break;
      default: less = true; break;  // numeric ranks before string
    }
    if (less) min_ = Value{v};
  } else if (fn_ == Fn::Max) {
    bool greater;
    switch (max_.type()) {
      case ValueType::Null: greater = true; break;
      case ValueType::Double: greater = v > max_.as_double(); break;
      case ValueType::Int:
        greater = compare_int_double(max_.as_int(), v) < 0;
        break;
      default: greater = false; break;  // numeric ranks before string
    }
    if (greater) max_ = Value{v};
  }
}

}  // namespace ysmart
