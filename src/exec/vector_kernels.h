// Type-specialized batch kernels over ColumnBatch.
//
// eval_expr_batch walks the same compiled BoundExpr::Node tree the
// scalar interpreter runs, but evaluates each node over the whole batch
// with loops dispatched once per node on the operand element types —
// no per-row std::variant visit, no per-row operator-string compares,
// no Value temporaries for intermediates. The contract is exact scalar
// equivalence: for every row i, value_at(i) of the result equals what
// BoundExpr::eval would return on that row (same variant alternative,
// same double bit pattern), and a successful batch evaluation counts
// kRowsEvaluated by exactly the batch size — one per row, matching the
// scalar path's one count per eval() call.
//
// eval_expr_batch returns false (and counts nothing) when the batch or
// expression shape cannot be vectorized — Mixed columns, irregular
// batches, string operands in arithmetic, or a branch that throws where
// the scalar path's AND/OR short-circuit would have skipped it. Callers
// then fall back to per-row BoundExpr::eval, which reproduces scalar
// semantics (and counters) by definition.
#pragma once

#include <cstdint>
#include <vector>

#include "exec/batch.h"
#include "exec/expr_eval.h"

namespace ysmart {

class AggState;

/// One expression evaluated over every row of a batch. The
/// representation is either borrowed (a batch column, a literal) or an
/// owned typed vector for computed intermediates; numeric intermediates
/// are always uniformly Int64 or Double, so consumers can dispatch once.
struct BatchVector {
  enum class Rep { AllNull, Scalar, IntCol, DblCol, StrCol, IntVec, DblVec };

  Rep rep = Rep::AllNull;
  const ColumnVector* col = nullptr;     // *Col reps (borrowed)
  Value scalar;                          // Scalar rep (never NULL)
  std::vector<std::int64_t> ivec;        // IntVec
  std::vector<double> dvec;              // DblVec
  std::vector<unsigned char> nulls;      // IntVec/DblVec; empty = no NULLs

  bool is_null(std::size_t i) const;
  /// SQL truthiness of element i (NULL / 0 / "" are false).
  bool truthy(std::size_t i) const;
  /// Reconstruct element i as a Value — equals BoundExpr::eval exactly.
  Value value_at(std::size_t i) const;
};

/// Evaluate `expr` over `batch`. On success fills `out`, counts
/// kRowsEvaluated by batch.rows() and returns true; on any
/// non-vectorizable shape returns false having counted nothing.
bool eval_expr_batch(const BoundExpr& expr, ColumnBatch& batch,
                     BatchVector& out);

/// Append the indices of truthy elements to `sel` (the filter kernel's
/// selection-vector builder; loops are dispatched once on v.rep).
void collect_passing(const BatchVector& v, std::size_t n,
                     std::vector<std::uint32_t>& sel);

/// Feed element i of `v` into an aggregate through the typed add paths
/// (AggState::add_int/add_double/add_null), falling back to add(Value)
/// for string elements. Counter- and state-identical to
/// st.add(v.value_at(i)).
void add_to_agg(AggState& st, const BatchVector& v, std::size_t i);

}  // namespace ysmart
