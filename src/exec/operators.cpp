#include "exec/operators.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <span>
#include <unordered_map>

#include "common/error.h"
#include "common/prof_counters.h"
#include "exec/aggregates.h"
#include "exec/batch.h"
#include "exec/vector_kernels.h"

namespace ysmart {

namespace {

/// Batched filter+project over one input vector: slice into
/// ColumnBatch::kBatchRows chunks, run the filter kernel into a selection
/// vector, then evaluate projections only over the selected sub-batch.
/// Any non-vectorizable expression falls back to per-row eval for exactly
/// the rows the batch kernel would have covered, so output and counters
/// match the row path cell-for-cell.
void filter_project_batched(const std::vector<Row>& in, const BoundExpr* filter,
                            const std::vector<BoundExpr>& projections,
                            std::vector<Row>& out) {
  const bool have_filter = filter && filter->valid();
  std::vector<std::uint32_t> sel;
  std::vector<BatchVector> cols(projections.size());
  std::vector<char> ok(projections.size());
  for (std::size_t base = 0; base < in.size();
       base += ColumnBatch::kBatchRows) {
    const std::size_t n = std::min(ColumnBatch::kBatchRows, in.size() - base);
    const std::span<const Row> chunk(in.data() + base, n);
    ColumnBatch batch(chunk);
    sel.clear();
    if (have_filter) {
      BatchVector fv;
      if (eval_expr_batch(*filter, batch, fv)) {
        collect_passing(fv, n, sel);
      } else {
        for (std::size_t k = 0; k < n; ++k)
          if (is_true(filter->eval(chunk[k])))
            sel.push_back(static_cast<std::uint32_t>(k));
      }
    } else {
      for (std::size_t k = 0; k < n; ++k)
        sel.push_back(static_cast<std::uint32_t>(k));
    }
    if (sel.empty()) continue;
    if (projections.empty()) {
      for (auto k : sel) out.push_back(chunk[k]);
      continue;
    }
    ColumnBatch selected = batch.select(sel);
    for (std::size_t j = 0; j < projections.size(); ++j)
      ok[j] = eval_expr_batch(projections[j], selected, cols[j]);
    for (std::size_t k = 0; k < selected.rows(); ++k) {
      Row p;
      p.reserve(projections.size());
      for (std::size_t j = 0; j < projections.size(); ++j)
        p.push_back(ok[j] ? cols[j].value_at(k)
                          : projections[j].eval(selected.source_row(k)));
      out.push_back(std::move(p));
    }
  }
}

}  // namespace

std::vector<Row> filter_project(const std::vector<Row>& in,
                                const BoundExpr* filter,
                                const std::vector<BoundExpr>& projections) {
  prof::count(prof::kOperatorRows, in.size());
  std::vector<Row> out;
  out.reserve(in.size());
  if (vectorized_enabled() && !in.empty()) {
    filter_project_batched(in, filter, projections, out);
    return out;
  }
  for (const auto& r : in) {
    if (filter && filter->valid() && !is_true(filter->eval(r))) continue;
    if (projections.empty()) {
      out.push_back(r);
    } else {
      Row p;
      p.reserve(projections.size());
      for (const auto& e : projections) p.push_back(e.eval(r));
      out.push_back(std::move(p));
    }
  }
  return out;
}

namespace {

Row concat_rows(const Row& a, const Row& b) {
  Row r = a;
  r.insert(r.end(), b.begin(), b.end());
  return r;
}

Row null_row(std::size_t n) { return Row(n, Value::null()); }

void emit_joined(const GroupJoinSpec& spec, Row joined, std::vector<Row>& out) {
  if (spec.residual && spec.residual->valid() &&
      !is_true(spec.residual->eval(joined)))
    return;
  if (spec.projections && !spec.projections->empty()) {
    Row p;
    p.reserve(spec.projections->size());
    for (const auto& e : *spec.projections) p.push_back(e.eval(joined));
    out.push_back(std::move(p));
  } else {
    out.push_back(std::move(joined));
  }
}

bool keys_equal(const GroupJoinSpec& spec, const Row& l, const Row& r) {
  for (std::size_t i = 0; i < spec.left_key_idx.size(); ++i) {
    const Value& a = l.at(spec.left_key_idx[i]);
    const Value& b = r.at(spec.right_key_idx[i]);
    // SQL equi-join: NULL keys never match.
    if (a.is_null() || b.is_null()) return false;
    if (a.compare(b) != 0) return false;
  }
  return true;
}

}  // namespace

std::vector<Row> join_group(const GroupJoinSpec& spec,
                            const std::vector<Row>& left,
                            const std::vector<Row>& right) {
  prof::count(prof::kOperatorRows, left.size() + right.size());
  std::vector<Row> out;
  std::vector<char> right_matched(right.size(), 0);
  for (const auto& l : left) {
    bool matched = false;
    for (std::size_t j = 0; j < right.size(); ++j) {
      if (!keys_equal(spec, l, right[j])) continue;
      matched = true;
      right_matched[j] = 1;
      emit_joined(spec, concat_rows(l, right[j]), out);
    }
    if (!matched &&
        (spec.type == JoinType::Left || spec.type == JoinType::Full)) {
      emit_joined(spec, concat_rows(l, null_row(spec.right_width)), out);
    }
  }
  if (spec.type == JoinType::Right || spec.type == JoinType::Full) {
    for (std::size_t j = 0; j < right.size(); ++j) {
      if (!right_matched[j])
        emit_joined(spec, concat_rows(null_row(spec.left_width), right[j]), out);
    }
  }
  return out;
}

std::vector<Row> hash_join(const PlanNode& join, const std::vector<Row>& left,
                           const std::vector<Row>& right) {
  check(join.kind == PlanKind::Join, "hash_join on non-Join node");
  const Schema& ls = join.children[0]->output_schema;
  const Schema& rs = join.children[1]->output_schema;
  std::vector<std::size_t> lk, rk;
  for (std::size_t i = 0; i < join.left_keys.size(); ++i) {
    lk.push_back(ls.index_of(join.left_keys[i]));
    rk.push_back(rs.index_of(join.right_keys[i]));
  }
  const Schema combined = Schema::concat(ls, rs);
  BoundExpr residual;
  if (join.filter) residual = BoundExpr(join.filter, combined);
  std::vector<BoundExpr> projections = bind_all(join.projections, combined);

  GroupJoinSpec spec;
  spec.type = join.join_type;
  spec.residual = join.filter ? &residual : nullptr;
  spec.projections = &projections;
  spec.left_width = ls.size();
  spec.right_width = rs.size();
  spec.left_key_idx = lk;
  spec.right_key_idx = rk;

  // Bucket both sides by key, then run the group joiner per bucket. NULL
  // keys never join but must still surface through outer padding, so they
  // go into per-side "unmatched" pools.
  std::map<Row, std::pair<std::vector<Row>, std::vector<Row>>, RowLess> buckets;
  std::vector<Row> left_null, right_null;
  auto key_of = [](const Row& r, const std::vector<std::size_t>& idx,
                   bool& has_null) {
    Row k;
    k.reserve(idx.size());
    for (auto i : idx) {
      if (r.at(i).is_null()) has_null = true;
      k.push_back(r.at(i));
    }
    return k;
  };
  for (const auto& r : left) {
    bool has_null = false;
    Row k = key_of(r, lk, has_null);
    if (has_null)
      left_null.push_back(r);
    else
      buckets[std::move(k)].first.push_back(r);
  }
  for (const auto& r : right) {
    bool has_null = false;
    Row k = key_of(r, rk, has_null);
    if (has_null)
      right_null.push_back(r);
    else
      buckets[std::move(k)].second.push_back(r);
  }

  std::vector<Row> out;
  for (auto& [k, lr] : buckets) {
    auto rows = join_group(spec, lr.first, lr.second);
    out.insert(out.end(), std::make_move_iterator(rows.begin()),
               std::make_move_iterator(rows.end()));
  }
  // Null-keyed rows join nothing; pad them for outer joins.
  if (spec.type == JoinType::Left || spec.type == JoinType::Full)
    for (const auto& l : left_null)
      emit_joined(spec, concat_rows(l, null_row(spec.right_width)), out);
  if (spec.type == JoinType::Right || spec.type == JoinType::Full)
    for (const auto& r : right_null)
      emit_joined(spec, concat_rows(null_row(spec.left_width), r), out);
  return out;
}

std::vector<Row> aggregate_rows(const PlanNode& agg,
                                const std::vector<Row>& in) {
  prof::count(prof::kOperatorRows, in.size());
  check(agg.kind == PlanKind::Agg, "aggregate_rows on non-Agg node");
  const Schema& child = agg.children[0]->output_schema;
  std::vector<std::size_t> group_idx;
  for (const auto& g : agg.group_cols) group_idx.push_back(child.index_of(g));
  std::vector<BoundExpr> agg_args;
  for (const auto& a : agg.aggs) {
    if (a.star)
      agg_args.emplace_back();  // unused placeholder
    else
      agg_args.emplace_back(a.arg, child);
  }

  std::map<Row, std::vector<AggState>, RowLess> groups;
  auto states_of = [&](Row&& key) -> std::vector<AggState>& {
    auto it = groups.find(key);
    if (it == groups.end()) {
      std::vector<AggState> st;
      st.reserve(agg.aggs.size());
      for (const auto& a : agg.aggs) st.emplace_back(a);
      it = groups.emplace(std::move(key), std::move(st)).first;
    }
    return it->second;
  };
  // The batched branch accumulates groups in a hash map — the ordered
  // map's per-row O(log g) full-row comparisons dominate the loop once
  // argument eval is batched — and moves the entries into the ordered map
  // afterwards, so downstream iteration order (and output) is unchanged.
  // RowHash is consistent with compare_rows except for NaN key cells (a
  // NaN compares "equal" to any numeric but hashes like itself), so an
  // input with a NaN in a group key takes the row path wholesale; the
  // pre-scan touches no expression or counter.
  bool use_vec = vectorized_enabled() && !in.empty();
  // A single all-int64 group column upgrades further to a plain
  // int-keyed hash map: no per-row key Row is built at all, and int
  // equality coincides exactly with RowEq on all-int keys.
  bool int_keys = use_vec && group_idx.size() == 1;
  if (use_vec && !group_idx.empty()) {
    for (const auto& r : in) {
      for (auto i : group_idx) {
        const Value& v = r.at(i);
        const ValueType vt = v.type();
        if (vt != ValueType::Int) int_keys = false;
        if (vt == ValueType::Double && std::isnan(v.as_double())) {
          use_vec = false;
          break;
        }
      }
      if (!use_vec) break;
    }
  }
  if (use_vec) {
    // Batched: aggregate arguments are evaluated once per chunk by the
    // kernels; group keys are raw cells, so the per-row loop only builds
    // keys and feeds the typed adds. Non-vectorizable arguments fall back
    // to per-row eval for this chunk.
    std::unordered_map<Row, std::vector<AggState>, RowHash, RowEq> hgroups;
    std::unordered_map<std::int64_t, std::vector<AggState>> igroups;
    auto fresh_states = [&] {
      std::vector<AggState> st;
      st.reserve(agg.aggs.size());
      for (const auto& a : agg.aggs) st.emplace_back(a);
      return st;
    };
    Row key_scratch;
    std::vector<BatchVector> argv(agg.aggs.size());
    std::vector<char> vec_ok(agg.aggs.size());
    for (std::size_t base = 0; base < in.size();
         base += ColumnBatch::kBatchRows) {
      const std::size_t n = std::min(ColumnBatch::kBatchRows, in.size() - base);
      const std::span<const Row> chunk(in.data() + base, n);
      ColumnBatch batch(chunk);
      for (std::size_t i = 0; i < agg.aggs.size(); ++i)
        vec_ok[i] =
            !agg.aggs[i].star && eval_expr_batch(agg_args[i], batch, argv[i]);
      const std::int64_t* key_data =
          int_keys ? batch.column(group_idx[0]).int_data() : nullptr;
      for (std::size_t k = 0; k < n; ++k) {
        const Row& r = chunk[k];
        std::vector<AggState>* states;
        if (int_keys) {
          auto [it, inserted] = igroups.try_emplace(key_data[k]);
          if (inserted) it->second = fresh_states();
          states = &it->second;
        } else {
          key_scratch.clear();
          for (auto i : group_idx) key_scratch.push_back(r.at(i));
          auto it = hgroups.find(key_scratch);
          if (it == hgroups.end())
            it = hgroups.emplace(key_scratch, fresh_states()).first;
          states = &it->second;
        }
        for (std::size_t i = 0; i < agg.aggs.size(); ++i) {
          if (agg.aggs[i].star)
            (*states)[i].add_int(1);
          else if (vec_ok[i])
            add_to_agg((*states)[i], argv[i], k);
          else
            (*states)[i].add(agg_args[i].eval(r));
        }
      }
    }
    for (auto& [k, st] : igroups) groups.emplace(Row{Value{k}}, std::move(st));
    while (!hgroups.empty()) {
      auto nh = hgroups.extract(hgroups.begin());
      groups.emplace(std::move(nh.key()), std::move(nh.mapped()));
    }
  } else {
    for (const auto& r : in) {
      Row key;
      key.reserve(group_idx.size());
      for (auto i : group_idx) key.push_back(r.at(i));
      auto& states = states_of(std::move(key));
      for (std::size_t i = 0; i < agg.aggs.size(); ++i) {
        if (agg.aggs[i].star)
          states[i].add(Value{std::int64_t{1}});
        else
          states[i].add(agg_args[i].eval(r));
      }
    }
  }
  // Global aggregation over empty input still yields one group.
  if (groups.empty() && group_idx.empty()) {
    std::vector<AggState> st;
    for (const auto& a : agg.aggs) st.emplace_back(a);
    groups.emplace(Row{}, std::move(st));
  }

  const Schema internal = agg.agg_internal_schema();
  std::vector<BoundExpr> projections = bind_all(agg.projections, internal);
  // HAVING: post-aggregation filter over the output schema.
  BoundExpr having;
  if (agg.filter) having = BoundExpr(agg.filter, agg.output_schema);
  std::vector<Row> out;
  out.reserve(groups.size());
  for (const auto& [key, states] : groups) {
    Row internal_row = key;
    for (const auto& s : states) internal_row.push_back(s.result());
    Row o;
    o.reserve(projections.size());
    for (const auto& p : projections) o.push_back(p.eval(internal_row));
    if (having.valid() && !is_true(having.eval(o))) continue;
    out.push_back(std::move(o));
  }
  return out;
}

std::vector<Row> sort_rows(const PlanNode& sort, std::vector<Row> in) {
  prof::count(prof::kOperatorRows, in.size());
  check(sort.kind == PlanKind::Sort, "sort_rows on non-Sort node");
  const Schema& child = sort.children[0]->output_schema;
  std::vector<BoundExpr> keys;
  std::vector<bool> desc;
  for (const auto& k : sort.sort_keys) {
    keys.emplace_back(k.expr, child);
    desc.push_back(k.desc);
  }
  if (!keys.empty()) {
    std::stable_sort(in.begin(), in.end(), [&](const Row& a, const Row& b) {
      for (std::size_t i = 0; i < keys.size(); ++i) {
        const auto c = keys[i].eval(a).compare(keys[i].eval(b));
        if (c != 0) return desc[i] ? c > 0 : c < 0;
      }
      return false;
    });
  }
  if (sort.limit && static_cast<std::int64_t>(in.size()) > *sort.limit)
    in.resize(static_cast<std::size_t>(*sort.limit));
  return in;
}

}  // namespace ysmart
