// Row-vector implementations of the plan operations.
//
// These functions are the single source of operator semantics in the
// repository: the reference executor (refdb) runs them over whole tables,
// and the CMF common reducer runs them over per-key row groups, so both
// paths compute identical results by construction.
#pragma once

#include <vector>

#include "exec/expr_eval.h"
#include "plan/plan.h"

namespace ysmart {

/// Scan/SP body: filter (may be invalid = pass-all) then project
/// (empty projections = identity).
std::vector<Row> filter_project(const std::vector<Row>& in,
                                const BoundExpr* filter,
                                const std::vector<BoundExpr>& projections);

/// Join two row sets that are already co-partitioned on the equi-key
/// (i.e. one reduce key group): cross-match within the group, then apply
/// the residual predicate (WHERE semantics: after null-padding for outer
/// joins), then project. `left_width`/`right_width` are the child output
/// arities used for padding.
struct GroupJoinSpec {
  JoinType type = JoinType::Inner;
  const BoundExpr* residual = nullptr;      // over concat(left, right)
  const std::vector<BoundExpr>* projections = nullptr;  // empty = identity
  std::size_t left_width = 0;
  std::size_t right_width = 0;
  /// Equi-key indices into the left/right child rows; used to re-check
  /// key equality (guards against hash-grouped callers) and may be empty
  /// when the caller guarantees single-key groups.
  std::vector<std::size_t> left_key_idx;
  std::vector<std::size_t> right_key_idx;
};
std::vector<Row> join_group(const GroupJoinSpec& spec,
                            const std::vector<Row>& left,
                            const std::vector<Row>& right);

/// Full hash equi-join of two tables (used by refdb).
std::vector<Row> hash_join(const PlanNode& join, const std::vector<Row>& left,
                           const std::vector<Row>& right);

/// Grouping aggregation over arbitrary rows (not pre-partitioned):
/// groups by `agg.group_cols`, computes aggregates, applies the post
/// projections. Output is sorted by group key for determinism.
std::vector<Row> aggregate_rows(const PlanNode& agg, const std::vector<Row>& in);

/// ORDER BY (+ LIMIT). Keys bind against the child's output schema.
std::vector<Row> sort_rows(const PlanNode& sort, std::vector<Row> in);

}  // namespace ysmart
