#include "exec/batch.h"

#include <atomic>

#include "common/env.h"
#include "common/error.h"

namespace ysmart {

namespace {

std::atomic<bool>& vectorized_flag() {
  static std::atomic<bool> flag{env_flag("YSMART_VECTORIZED").value_or(true)};
  return flag;
}

const std::string& empty_string() {
  static const std::string empty;
  return empty;
}

}  // namespace

bool vectorized_enabled() {
  return vectorized_flag().load(std::memory_order_relaxed);
}

void set_vectorized_enabled(bool on) {
  vectorized_flag().store(on, std::memory_order_relaxed);
}

Value ColumnVector::value_at(std::size_t i) const {
  if (is_null(i)) return Value::null();
  switch (type_) {
    case ColType::Null: return Value::null();
    case ColType::Int64: return Value{ints_[i]};
    case ColType::Double: return Value{dbls_[i]};
    case ColType::String: return Value{*strs_[i]};
    case ColType::Mixed: return *mixed_[i];
  }
  return Value::null();
}

ColumnBatch::ColumnBatch(std::span<const Row> rows) : rows_(rows) {
  num_cols_ = rows_.empty() ? 0 : rows_.front().size();
  for (const Row& r : rows_)
    if (r.size() != num_cols_) {
      regular_ = false;
      break;
    }
  cols_.resize(regular_ ? num_cols_ : 0);
}

ColumnBatch::ColumnBatch(std::span<const Row> rows,
                         std::vector<std::uint32_t> sel)
    : rows_(rows), sel_(std::move(sel)), has_sel_(true) {
  num_cols_ = sel_.empty() ? 0 : rows_[sel_.front()].size();
  for (const std::uint32_t i : sel_)
    if (rows_[i].size() != num_cols_) {
      regular_ = false;
      break;
    }
  cols_.resize(regular_ ? num_cols_ : 0);
}

ColumnBatch ColumnBatch::select(const std::vector<std::uint32_t>& local) const {
  std::vector<std::uint32_t> composed;
  composed.reserve(local.size());
  for (const std::uint32_t i : local)
    composed.push_back(has_sel_ ? sel_[i] : i);
  return ColumnBatch(rows_, std::move(composed));
}

// Single optimistic pass per column: the first non-null cell fixes the
// physical type and the typed vector fills as the scan goes (separate
// tight loops per type — a per-cell type state machine fused across
// columns measured slower, since a batch stays cache-resident between
// walks). A conflicting cell demotes the column to Mixed and refills
// from scratch (at most one restart, only on genuinely mixed columns).
void ColumnBatch::pivot_one(std::size_t c) {
  auto col = std::make_unique<ColumnVector>();
  const std::size_t n = rows();
  col->size_ = n;

  bool any_null = false;
  std::size_t i = 0;
  while (i < n && source_row(i)[c].is_null()) {
    any_null = true;
    ++i;
  }
  ColType t = ColType::Null;
  if (i < n) {
    switch (source_row(i)[c].type()) {
      case ValueType::Int: t = ColType::Int64; break;
      case ValueType::Double: t = ColType::Double; break;
      case ValueType::String: t = ColType::String; break;
      default: t = ColType::Mixed; break;
    }
  }
  switch (t) {
    case ColType::Null:
    case ColType::Mixed:
      break;
    case ColType::Int64:
      col->ints_.assign(i, 0);  // placeholders for the leading NULLs
      col->ints_.reserve(n);
      for (; i < n; ++i) {
        const Value& v = source_row(i)[c];
        const ValueType vt = v.type();
        if (vt == ValueType::Int) {
          col->ints_.push_back(v.as_int());
        } else if (vt == ValueType::Null) {
          any_null = true;
          col->ints_.push_back(0);
        } else {
          t = ColType::Mixed;
          break;
        }
      }
      break;
    case ColType::Double:
      col->dbls_.assign(i, 0.0);
      col->dbls_.reserve(n);
      for (; i < n; ++i) {
        const Value& v = source_row(i)[c];
        const ValueType vt = v.type();
        if (vt == ValueType::Double) {
          col->dbls_.push_back(v.as_double());
        } else if (vt == ValueType::Null) {
          any_null = true;
          col->dbls_.push_back(0.0);
        } else {
          t = ColType::Mixed;
          break;
        }
      }
      break;
    case ColType::String:
      col->strs_.assign(i, &empty_string());
      col->strs_.reserve(n);
      for (; i < n; ++i) {
        const Value& v = source_row(i)[c];
        const ValueType vt = v.type();
        if (vt == ValueType::String) {
          col->strs_.push_back(&v.as_string());
        } else if (vt == ValueType::Null) {
          any_null = true;
          col->strs_.push_back(&empty_string());
        } else {
          t = ColType::Mixed;
          break;
        }
      }
      break;
  }
  if (t == ColType::Mixed) {
    col->ints_.clear();
    col->dbls_.clear();
    col->strs_.clear();
    any_null = false;
    col->mixed_.reserve(n);
    for (std::size_t j = 0; j < n; ++j) {
      const Value& v = source_row(j)[c];
      if (v.is_null()) any_null = true;
      col->mixed_.push_back(&v);
    }
  }
  col->type_ = t;
  if (any_null) {
    col->nulls_.resize(n, 0);
    for (std::size_t j = 0; j < n; ++j)
      if (source_row(j)[c].is_null()) col->nulls_[j] = 1;
  }
  cols_[c] = std::move(col);
}

const ColumnVector& ColumnBatch::column(std::size_t c) {
  check(regular_, "ColumnBatch::column on an irregular batch");
  check(c < num_cols_, "ColumnBatch::column index out of range");
  if (!cols_[c]) pivot_one(c);
  return *cols_[c];
}

Row ColumnBatch::materialize_row(std::size_t i) {
  Row r;
  r.reserve(num_cols_);
  for (std::size_t c = 0; c < num_cols_; ++c) r.push_back(column(c).value_at(i));
  return r;
}

}  // namespace ysmart
