#include "exec/expr_eval.h"

#include "common/error.h"
#include "common/prof_counters.h"

namespace ysmart {

namespace {

enum class Tri { False, True, Unknown };

Tri to_tri(const Value& v) {
  if (v.is_null()) return Tri::Unknown;
  return is_true(v) ? Tri::True : Tri::False;
}

Value from_tri(Tri t) {
  switch (t) {
    case Tri::False: return Value{std::int64_t{0}};
    case Tri::True: return Value{std::int64_t{1}};
    case Tri::Unknown: return Value::null();
  }
  return Value::null();
}

bool both_int(const Value& a, const Value& b) {
  return a.type() == ValueType::Int && b.type() == ValueType::Int;
}

}  // namespace

bool is_true(const Value& v) {
  switch (v.type()) {
    case ValueType::Null: return false;
    case ValueType::Int: return v.as_int() != 0;
    case ValueType::Double: return v.as_double() != 0;
    case ValueType::String: return !v.as_string().empty();
  }
  return false;
}

BoundExpr::BoundExpr(ExprPtr expr, const Schema& schema) : expr_(std::move(expr)) {
  check(expr_ != nullptr, "BoundExpr: null expression");
  root_ = compile(*expr_, schema);
}

BoundExpr::Node BoundExpr::compile(const Expr& e, const Schema& schema) {
  Node n;
  n.kind = e.kind;
  n.op = e.op;
  n.negated = e.negated;
  switch (e.kind) {
    case ExprKind::Literal:
      n.literal = e.literal;
      break;
    case ExprKind::ColumnRef:
      n.col_index = schema.index_of(e.column);
      break;
    case ExprKind::FuncCall:
      throw PlanError("function call not valid in a bound expression "
                      "(aggregates must be rewritten by the planner): " +
                      e.to_string());
    default:
      break;
  }
  for (const auto& a : e.args) n.args.push_back(compile(*a, schema));
  return n;
}

Value BoundExpr::eval(const Row& row) const {
  prof::count(prof::kRowsEvaluated);
  return eval_node(root_, row);
}

Value BoundExpr::eval_node(const Node& n, const Row& row) {
  switch (n.kind) {
    case ExprKind::Literal:
      return n.literal;
    case ExprKind::ColumnRef:
      return row.at(n.col_index);
    case ExprKind::IsNull: {
      const Value v = eval_node(n.args[0], row);
      const bool isnull = v.is_null();
      return Value{std::int64_t{(isnull != n.negated) ? 1 : 0}};
    }
    case ExprKind::Unary: {
      const Value v = eval_node(n.args[0], row);
      if (n.op == "not") {
        const Tri t = to_tri(v);
        if (t == Tri::Unknown) return Value::null();
        return from_tri(t == Tri::True ? Tri::False : Tri::True);
      }
      if (n.op == "-") {
        if (v.is_null()) return Value::null();
        if (v.type() == ValueType::Int) return Value{-v.as_int()};
        return Value{-v.numeric()};
      }
      throw ExecError("unknown unary operator: " + n.op);
    }
    case ExprKind::Binary: {
      if (n.op == "and" || n.op == "or") {
        const Tri a = to_tri(eval_node(n.args[0], row));
        // Short circuit where the result is already determined.
        if (n.op == "and" && a == Tri::False) return from_tri(Tri::False);
        if (n.op == "or" && a == Tri::True) return from_tri(Tri::True);
        const Tri b = to_tri(eval_node(n.args[1], row));
        if (n.op == "and") {
          if (b == Tri::False) return from_tri(Tri::False);
          if (a == Tri::Unknown || b == Tri::Unknown) return Value::null();
          return from_tri(Tri::True);
        }
        if (b == Tri::True) return from_tri(Tri::True);
        if (a == Tri::Unknown || b == Tri::Unknown) return Value::null();
        return from_tri(Tri::False);
      }
      const Value a = eval_node(n.args[0], row);
      const Value b = eval_node(n.args[1], row);
      if (a.is_null() || b.is_null()) return Value::null();
      if (n.op == "+" || n.op == "-" || n.op == "*") {
        if (both_int(a, b)) {
          const std::int64_t x = a.as_int(), y = b.as_int();
          if (n.op == "+") return Value{x + y};
          if (n.op == "-") return Value{x - y};
          return Value{x * y};
        }
        const double x = a.numeric(), y = b.numeric();
        if (n.op == "+") return Value{x + y};
        if (n.op == "-") return Value{x - y};
        return Value{x * y};
      }
      if (n.op == "/") {
        const double y = b.numeric();
        if (y == 0) return Value::null();
        return Value{a.numeric() / y};
      }
      // Comparisons.
      const auto c = a.compare(b);
      bool r;
      if (n.op == "=") r = (c == 0);
      else if (n.op == "<>") r = (c != 0);
      else if (n.op == "<") r = (c < 0);
      else if (n.op == "<=") r = (c <= 0);
      else if (n.op == ">") r = (c > 0);
      else if (n.op == ">=") r = (c >= 0);
      else throw ExecError("unknown binary operator: " + n.op);
      return Value{std::int64_t{r ? 1 : 0}};
    }
    case ExprKind::FuncCall:
      throw ExecError("unexpected function call at eval time");
  }
  throw ExecError("unreachable expression kind");
}

std::vector<BoundExpr> bind_all(const std::vector<ExprPtr>& exprs,
                                const Schema& schema) {
  std::vector<BoundExpr> out;
  out.reserve(exprs.size());
  for (const auto& e : exprs) out.emplace_back(e, schema);
  return out;
}

}  // namespace ysmart
