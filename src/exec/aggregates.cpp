#include "exec/aggregates.h"

#include "common/error.h"
#include "common/prof_counters.h"

namespace ysmart {

AggState::AggState(const AggCall& call) : call_(call) {
  if (call_.func == "sum")
    fn_ = Fn::Sum;
  else if (call_.func == "avg")
    fn_ = Fn::Avg;
  else if (call_.func == "min")
    fn_ = Fn::Min;
  else if (call_.func == "max")
    fn_ = Fn::Max;
}

void AggState::add(const Value& v) {
  prof::count(prof::kAggUpdates);
  if (!call_.star && v.is_null()) return;  // SQL: aggregates skip NULLs
  if (call_.distinct) {
    distinct_.insert(v);
    return;
  }
  ++count_;
  if (fn_ == Fn::Sum || fn_ == Fn::Avg) {
    sum_ += v.numeric();
    if (v.type() == ValueType::Int)
      isum_ += v.as_int();
    else
      sum_all_int_ = false;
  } else if (fn_ == Fn::Min) {
    if (min_.is_null() || v.compare(min_) < 0) min_ = v;
  } else if (fn_ == Fn::Max) {
    if (max_.is_null() || v.compare(max_) > 0) max_ = v;
  }
}

void AggState::add_null() { add(Value::null()); }

void AggState::merge(const AggState& other) {
  if (call_.distinct) {
    distinct_.insert(other.distinct_.begin(), other.distinct_.end());
    return;
  }
  count_ += other.count_;
  sum_ += other.sum_;
  isum_ += other.isum_;
  sum_all_int_ = sum_all_int_ && other.sum_all_int_;
  if (!other.min_.is_null() && (min_.is_null() || other.min_.compare(min_) < 0))
    min_ = other.min_;
  if (!other.max_.is_null() && (max_.is_null() || other.max_.compare(max_) > 0))
    max_ = other.max_;
}

Value AggState::result() const {
  if (call_.func == "count") {
    if (call_.distinct) return Value{static_cast<std::int64_t>(distinct_.size())};
    return Value{count_};
  }
  if (call_.distinct)
    throw ExecError("DISTINCT is only supported with count()");
  if (count_ == 0) return Value::null();
  if (call_.func == "sum")
    return sum_all_int_ ? Value{isum_} : Value{sum_};
  if (call_.func == "avg") return Value{sum_ / static_cast<double>(count_)};
  if (call_.func == "min") return min_;
  if (call_.func == "max") return max_;
  throw ExecError("unknown aggregate: " + call_.func);
}

int AggState::partial_arity() const {
  if (call_.distinct) return kVariableArity;
  if (call_.func == "count") return 1;
  if (call_.func == "sum" || call_.func == "avg") return 2;  // (sum, count)
  if (call_.func == "min" || call_.func == "max") return 1;
  throw ExecError("unknown aggregate: " + call_.func);
}

void AggState::to_partial(Row& out) const {
  check(!call_.distinct, "distinct aggregates have no fixed partial form");
  if (call_.func == "count") {
    out.push_back(Value{count_});
  } else if (call_.func == "sum" || call_.func == "avg") {
    out.push_back(sum_all_int_ ? Value{isum_} : Value{sum_});
    out.push_back(Value{count_});
  } else if (call_.func == "min") {
    out.push_back(min_);
  } else {
    out.push_back(max_);
  }
}

void AggState::add_partial(std::span<const Value> in) {
  prof::count(prof::kAggUpdates);
  check(!call_.distinct, "distinct aggregates have no fixed partial form");
  if (call_.func == "count") {
    count_ += in[0].as_int();
  } else if (call_.func == "sum" || call_.func == "avg") {
    if (!in[0].is_null()) {
      sum_ += in[0].numeric();
      if (in[0].type() == ValueType::Int)
        isum_ += in[0].as_int();
      else
        sum_all_int_ = false;
    }
    count_ += in[1].as_int();
  } else if (call_.func == "min") {
    if (!in[0].is_null()) {
      ++count_;
      if (min_.is_null() || in[0].compare(min_) < 0) min_ = in[0];
    }
  } else {
    if (!in[0].is_null()) {
      ++count_;
      if (max_.is_null() || in[0].compare(max_) > 0) max_ = in[0];
    }
  }
}

bool combinable(const PlanNode& agg) {
  for (const auto& a : agg.aggs)
    if (a.distinct) return false;
  return true;
}

}  // namespace ysmart
