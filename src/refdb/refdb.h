// RefDb: single-process pipelined execution of a logical plan.
//
// Two roles (see DESIGN.md):
//  1. Correctness oracle — every MapReduce execution in the test suite is
//     differentially compared against RefDb on the same plan.
//  2. The paper's "ideal parallel PostgreSQL" baseline (Section VII-D):
//     the authors ran PostgreSQL on 1/4-size data to simulate a 4-way
//     parallel DBMS; we model the DBMS side as an in-memory pipelined
//     engine whose simulated time is measured work / an effective
//     scan+process bandwidth, divided by the assumed parallelism.
#pragma once

#include <functional>
#include <memory>

#include "plan/plan.h"
#include "storage/table.h"

namespace ysmart {

/// Supplies base-table contents by name.
using TableSource =
    std::function<std::shared_ptr<const Table>(const std::string&)>;

/// Execute `plan` and return the result table (schema = plan output).
Table execute_plan_ref(const PlanPtr& plan, const TableSource& tables);

/// Cost model for the "ideal parallel DBMS" comparison.
struct DbmsCostConfig {
  /// The paper assumed an ideal 4x speedup from 4 cores by shrinking the
  /// data to 1/4; `parallelism` plays that role here.
  double parallelism = 4.0;
  /// Effective single-stream scan + process bandwidth of the DBMS.
  double scan_mb_per_s = 55.0;
  /// Per intermediate-row pipeline cost (hash probe/sort amortized).
  double row_cpu_us = 0.35;
  /// Multiplier representing how many base bytes stand for full-scale
  /// bytes (use the same sim_scale as the MapReduce cluster).
  double sim_scale = 1.0;
};

struct DbmsRunResult {
  Table result;
  double sim_seconds = 0;
  std::uint64_t bytes_scanned = 0;
  std::uint64_t rows_processed = 0;
};

/// Execute and also estimate the ideal-parallel-DBMS time.
DbmsRunResult execute_plan_dbms(const PlanPtr& plan, const TableSource& tables,
                                const DbmsCostConfig& cfg);

}  // namespace ysmart
