#include "refdb/refdb.h"

#include "common/error.h"
#include "exec/operators.h"

namespace ysmart {

namespace {

struct ExecStats {
  std::uint64_t bytes_scanned = 0;
  std::uint64_t rows_processed = 0;
};

std::vector<Row> run(const PlanPtr& node, const TableSource& tables,
                     ExecStats& stats) {
  switch (node->kind) {
    case PlanKind::Scan: {
      auto t = tables(node->table);
      if (!t) throw ExecError("refdb: no data for table " + node->table);
      stats.bytes_scanned += t->byte_size();
      stats.rows_processed += t->row_count();
      // Scan filters/projections reference alias-qualified names; they
      // bind against the qualified schema, and the base rows match it
      // positionally.
      const Schema qualified =
          t->schema().qualified(node->alias.empty() ? node->table : node->alias);
      BoundExpr filter;
      if (node->filter) filter = BoundExpr(node->filter, qualified);
      auto projections = bind_all(node->projections, qualified);
      return filter_project(t->rows(), node->filter ? &filter : nullptr,
                            projections);
    }
    case PlanKind::SP: {
      auto in = run(node->children[0], tables, stats);
      stats.rows_processed += in.size();
      const Schema& child = node->children[0]->output_schema;
      BoundExpr filter;
      if (node->filter) filter = BoundExpr(node->filter, child);
      auto projections = bind_all(node->projections, child);
      return filter_project(in, node->filter ? &filter : nullptr, projections);
    }
    case PlanKind::Join: {
      auto left = run(node->children[0], tables, stats);
      auto right = run(node->children[1], tables, stats);
      stats.rows_processed += left.size() + right.size();
      return hash_join(*node, left, right);
    }
    case PlanKind::Agg: {
      auto in = run(node->children[0], tables, stats);
      stats.rows_processed += in.size();
      return aggregate_rows(*node, in);
    }
    case PlanKind::Sort: {
      auto in = run(node->children[0], tables, stats);
      stats.rows_processed += in.size();
      return sort_rows(*node, std::move(in));
    }
  }
  throw InternalError("refdb: unknown plan kind");
}

}  // namespace

Table execute_plan_ref(const PlanPtr& plan, const TableSource& tables) {
  ExecStats stats;
  auto rows = run(plan, tables, stats);
  return Table(plan->output_schema, std::move(rows));
}

DbmsRunResult execute_plan_dbms(const PlanPtr& plan, const TableSource& tables,
                                const DbmsCostConfig& cfg) {
  ExecStats stats;
  auto rows = run(plan, tables, stats);
  DbmsRunResult r{Table(plan->output_schema, std::move(rows)), 0,
                  stats.bytes_scanned, stats.rows_processed};
  const double scanned_mb =
      static_cast<double>(stats.bytes_scanned) * cfg.sim_scale / (1024.0 * 1024);
  const double scan_s = scanned_mb / cfg.scan_mb_per_s;
  const double cpu_s = static_cast<double>(stats.rows_processed) *
                       cfg.sim_scale * cfg.row_cpu_us * 1e-6;
  r.sim_seconds = (scan_s + cpu_s) / cfg.parallelism;
  return r;
}

}  // namespace ysmart
