#include "translator/correlation.h"

#include <algorithm>

#include "common/error.h"
#include "common/strings.h"

namespace ysmart {

namespace {

void build_parent_map(const PlanPtr& node,
                      std::map<const PlanNode*, const PlanNode*>& parent) {
  for (const auto& c : node->children) {
    parent[c.get()] = node.get();
    build_parent_map(c, parent);
  }
}

}  // namespace

CorrelationAnalysis::CorrelationAnalysis(const PlanPtr& root,
                                         PkSelectionOptions pk_options)
    : pk_options_(pk_options) {
  build_parent_map(root, parent_);
  for (PlanNode* op : post_order_operations(root)) {
    OpInfo info;
    info.op = op;
    for (const auto& c : op->children)
      if (c->kind == PlanKind::Scan) info.direct_tables.insert(c->table);
    if (op->kind == PlanKind::Join) info.pk = join_partition_key(*op);
    index_[op] = static_cast<int>(ops_.size());
    ops_.push_back(std::move(info));
    // Aggregation PKs are chosen after joins' fixed PKs and after the
    // agg's own children have been processed (post-order guarantees it).
    if (op->kind == PlanKind::Agg && !op->group_cols.empty())
      choose_agg_pk(ops_.back());
  }
}

void CorrelationAnalysis::choose_agg_pk(OpInfo& info) {
  auto candidates = agg_partition_key_candidates(*info.op);
  if (candidates.empty()) return;

  const auto children = child_ops(info.op);
  const PlanNode* parent = nullptr;
  if (auto it = parent_.find(info.op); it != parent_.end()) parent = it->second;

  int best_score = 0;
  std::size_t best = candidates.size();  // invalid
  for (std::size_t ci = 0; ci < candidates.size(); ++ci) {
    const auto& cand = candidates[ci];
    int score = 0;
    // Job-flow correlation with child operations is what lets this AGG
    // collapse into the child's job (Rule 2); weight it highest.
    for (const PlanNode* c : children) {
      const auto& cpk = ops_[static_cast<std::size_t>(index_of(c))].pk;
      if (cand.matches(cpk)) score += 2;
    }
    // Enabling the parent join's JFC with us is worth one connection.
    if (parent && parent->kind == PlanKind::Join &&
        cand.matches(join_partition_key(*parent)))
      score += 1;
    // Transit correlation with independent operations that share a direct
    // input table (lets Rule 1 share their scan).
    for (const auto& other : ops_) {
      if (other.op == info.op || other.pk.empty()) continue;
      if (is_ancestor(other.op, info.op) || is_ancestor(info.op, other.op))
        continue;
      bool shares = false;
      for (const auto& t : other.direct_tables)
        if (info.direct_tables.count(t)) shares = true;
      if (shares && cand.matches(other.pk)) score += 1;
    }
    if (score > best_score ||
        (score == best_score && best < candidates.size() && score > 0 &&
         cand.columns.size() > candidates[best].columns.size())) {
      best_score = score;
      best = ci;
    }
  }
  if (best_score > 0 && best < candidates.size()) {
    info.pk = candidates[best];
    // Cost-based veto (the extension the paper leaves as future work): a
    // subset PK that produces too few distinct groups would serialize
    // the merged job's reduce phase; prefer full-key parallelism then.
    if (pk_options_.cost_based && pk_options_.stats &&
        info.pk.columns.size() < info.op->group_cols.size()) {
      const std::uint64_t groups = pk_options_.stats->estimate_groups(info.pk);
      if (groups < pk_options_.min_groups_for_subset_pk)
        info.pk = agg_full_partition_key(*info.op);
    }
  } else {
    // No correlation to exploit: partition by the full grouping key, as a
    // one-operation-to-one-job translation would.
    info.pk = agg_full_partition_key(*info.op);
  }
}

int CorrelationAnalysis::index_of(const PlanNode* op) const {
  auto it = index_.find(op);
  return it == index_.end() ? -1 : it->second;
}

const PartitionKey& CorrelationAnalysis::pk_of(const PlanNode* op) const {
  const int i = index_of(op);
  check(i >= 0, "pk_of: node is not an operation");
  return ops_[static_cast<std::size_t>(i)].pk;
}

bool CorrelationAnalysis::input_correlation(int a, int b) const {
  const auto& ta = ops_.at(static_cast<std::size_t>(a)).direct_tables;
  const auto& tb = ops_.at(static_cast<std::size_t>(b)).direct_tables;
  for (const auto& t : ta)
    if (tb.count(t)) return true;
  return false;
}

bool CorrelationAnalysis::transit_correlation(int a, int b) const {
  if (!input_correlation(a, b)) return false;
  const auto& pa = ops_.at(static_cast<std::size_t>(a)).pk;
  const auto& pb = ops_.at(static_cast<std::size_t>(b)).pk;
  return pa.matches(pb);
}

bool CorrelationAnalysis::job_flow_correlation(int parent, int child) const {
  const auto& pp = ops_.at(static_cast<std::size_t>(parent));
  const auto& cp = ops_.at(static_cast<std::size_t>(child));
  // `child` must actually be a direct child operation of `parent`.
  const auto kids = child_ops(pp.op);
  if (std::find(kids.begin(), kids.end(), cp.op) == kids.end()) return false;
  return pp.pk.matches(cp.pk);
}

bool CorrelationAnalysis::is_ancestor(const PlanNode* a,
                                      const PlanNode* b) const {
  const PlanNode* cur = b;
  while (true) {
    auto it = parent_.find(cur);
    if (it == parent_.end()) return false;
    cur = it->second;
    if (cur == a) return true;
  }
}

std::vector<PlanNode*> CorrelationAnalysis::child_ops(const PlanNode* op) const {
  std::vector<PlanNode*> out;
  for (const auto& c : op->children)
    if (c->is_operation()) out.push_back(c.get());
  return out;
}

std::string CorrelationAnalysis::report() const {
  std::string out = "operations and partition keys:\n";
  for (const auto& o : ops_) {
    out += "  " + o.op->label + ": PK=" +
           (o.pk.empty() ? "(none)" : o.pk.to_string());
    if (!o.direct_tables.empty()) {
      out += "  scans={";
      bool first = true;
      for (const auto& t : o.direct_tables) {
        if (!first) out += ",";
        out += t;
        first = false;
      }
      out += "}";
    }
    out += "\n";
  }
  out += "pairwise correlations:\n";
  for (std::size_t a = 0; a < ops_.size(); ++a) {
    for (std::size_t b = a + 1; b < ops_.size(); ++b) {
      const bool ic = input_correlation(static_cast<int>(a), static_cast<int>(b));
      const bool tc = transit_correlation(static_cast<int>(a), static_cast<int>(b));
      const bool jfc_ab = job_flow_correlation(static_cast<int>(b), static_cast<int>(a));
      if (!ic && !tc && !jfc_ab) continue;
      out += strf("  %s ~ %s:%s%s%s\n", ops_[a].op->label.c_str(),
                  ops_[b].op->label.c_str(), ic ? " IC" : "", tc ? " TC" : "",
                  jfc_ab ? " JFC" : "");
    }
  }
  return out;
}

}  // namespace ysmart
