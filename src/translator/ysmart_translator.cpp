#include "translator/ysmart_translator.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>

#include "common/error.h"
#include "obs/obs.h"
#include "plan/prune.h"
#include "translator/baseline.h"
#include "translator/correlation.h"
#include "translator/lowering.h"

namespace ysmart {

namespace {

struct Draft {
  std::vector<int> op_idx;  // indices into ca.ops(), kept sorted (post-order)
  bool alive = true;
};

class Merger {
 public:
  Merger(const CorrelationAnalysis& ca) : ca_(ca) {
    for (std::size_t i = 0; i < ca.ops().size(); ++i) {
      drafts_.push_back(Draft{{static_cast<int>(i)}, true});
      draft_of_.push_back(static_cast<int>(i));
    }
  }

  /// Step 1 — Rule 1: merge pairs with input + transit correlation.
  void merge_input_transit() {
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t a = 0; a < drafts_.size() && !changed; ++a) {
        if (!drafts_[a].alive) continue;
        for (std::size_t b = a + 1; b < drafts_.size() && !changed; ++b) {
          if (!drafts_[b].alive) continue;
          if (!pairwise_ic_tc(drafts_[a], drafts_[b])) continue;
          if (depends(static_cast<int>(a), static_cast<int>(b)) ||
              depends(static_cast<int>(b), static_cast<int>(a)))
            continue;
          merge_into(static_cast<int>(a), static_cast<int>(b));
          changed = true;
        }
      }
    }
  }

  /// Step 2 — Rules 2-4: job-flow correlation merging.
  void merge_job_flow() {
    for (std::size_t j = 0; j < ca_.ops().size(); ++j) {
      const OpInfo& info = ca_.ops()[j];
      if (info.pk.empty()) continue;
      const int dj = draft_of_[j];
      if (drafts_[static_cast<std::size_t>(dj)].op_idx.size() != 1)
        continue;  // only standalone jobs merge downstream

      if (info.op->kind == PlanKind::Agg) {
        // Rule 2: AGGREGATION job with JFC to its only preceding job.
        const auto kids = ca_.child_ops(info.op);
        if (kids.size() != 1) continue;
        const int ci = ca_.index_of(kids[0]);
        if (ci < 0) continue;
        if (!info.pk.matches(ca_.ops()[static_cast<std::size_t>(ci)].pk))
          continue;
        merge_into(draft_of_[static_cast<std::size_t>(ci)], dj);
        continue;
      }

      if (info.op->kind != PlanKind::Join) continue;
      // Children are scans ("always available") or operations.
      std::vector<int> child_drafts;   // -1 for scans
      std::vector<bool> jfc;
      for (const auto& c : info.op->children) {
        if (c->kind == PlanKind::Scan) {
          child_drafts.push_back(-1);
          jfc.push_back(false);
          continue;
        }
        const int ci = ca_.index_of(c.get());
        check(ci >= 0, "join child is neither scan nor operation");
        child_drafts.push_back(draft_of_[static_cast<std::size_t>(ci)]);
        jfc.push_back(
            info.pk.matches(ca_.ops()[static_cast<std::size_t>(ci)].pk));
      }

      // Rule 3: JFC with both children, already in one common job.
      if (child_drafts[0] >= 0 && child_drafts[0] == child_drafts[1] &&
          jfc[0] && jfc[1]) {
        merge_into(child_drafts[0], dj);
        continue;
      }
      // Rule 4: JFC with one child; the other input must be available
      // before the target job runs (a base table, or a job that can be
      // ordered first, i.e. one that does not depend on the target).
      for (std::size_t side = 0; side < 2; ++side) {
        if (!jfc[side]) continue;
        const int target = child_drafts[side];
        const std::size_t other = 1 - side;
        bool other_ok = true;
        if (child_drafts[other] >= 0 && child_drafts[other] != target)
          other_ok = !depends(child_drafts[other], target);
        else if (child_drafts[other] == target && !jfc[other])
          other_ok = false;  // same job but keyed differently: impossible
        if (!other_ok) continue;
        merge_into(target, dj);
        break;
      }
    }
  }

  /// Alive drafts in topological execution order.
  std::vector<std::vector<PlanNode*>> ordered_drafts() const {
    std::vector<int> alive;
    for (std::size_t d = 0; d < drafts_.size(); ++d)
      if (drafts_[d].alive) alive.push_back(static_cast<int>(d));
    // Kahn's algorithm with deterministic smallest-op-index tie-break.
    std::vector<int> order;
    std::set<int> done;
    while (order.size() < alive.size()) {
      bool progressed = false;
      for (int d : alive) {
        if (done.count(d)) continue;
        bool ready = true;
        for (int dep : draft_children(d))
          if (!done.count(dep)) ready = false;
        if (ready) {
          order.push_back(d);
          done.insert(d);
          progressed = true;
        }
      }
      check(progressed, "cycle in merged job dependency graph");
    }
    std::vector<std::vector<PlanNode*>> out;
    for (int d : order) {
      std::vector<PlanNode*> ops;
      for (int i : drafts_[static_cast<std::size_t>(d)].op_idx)
        ops.push_back(ca_.ops()[static_cast<std::size_t>(i)].op);
      out.push_back(std::move(ops));
    }
    return out;
  }

 private:
  bool pairwise_ic_tc(const Draft& a, const Draft& b) const {
    // Any member pair with IC+TC qualifies, but every member pair must be
    // PK-compatible so the merged job keeps a single partition key.
    bool any = false;
    for (int i : a.op_idx) {
      for (int j : b.op_idx) {
        const auto& pi = ca_.ops()[static_cast<std::size_t>(i)].pk;
        const auto& pj = ca_.ops()[static_cast<std::size_t>(j)].pk;
        if (pi.empty() || pj.empty() || !pi.matches(pj)) return false;
        if (ca_.transit_correlation(i, j)) any = true;
      }
    }
    return any;
  }

  /// Drafts whose outputs feed draft `d` (direct dependencies).
  std::set<int> draft_children(int d) const {
    std::set<int> out;
    for (int i : drafts_[static_cast<std::size_t>(d)].op_idx) {
      const PlanNode* op = ca_.ops()[static_cast<std::size_t>(i)].op;
      for (const auto& c : op->children) {
        if (!c->is_operation()) continue;
        const int ci = ca_.index_of(c.get());
        const int cd = draft_of_[static_cast<std::size_t>(ci)];
        if (cd != d) out.insert(cd);
      }
    }
    return out;
  }

  /// True if draft `a` (transitively) depends on draft `b`.
  bool depends(int a, int b) const {
    std::set<int> seen;
    std::vector<int> stack{a};
    while (!stack.empty()) {
      const int d = stack.back();
      stack.pop_back();
      for (int c : draft_children(d)) {
        if (c == b) return true;
        if (seen.insert(c).second) stack.push_back(c);
      }
    }
    return false;
  }

  void merge_into(int target, int source) {
    check(target != source, "cannot merge a draft into itself");
    auto& t = drafts_[static_cast<std::size_t>(target)];
    auto& s = drafts_[static_cast<std::size_t>(source)];
    for (int i : s.op_idx) {
      t.op_idx.push_back(i);
      draft_of_[static_cast<std::size_t>(i)] = target;
    }
    std::sort(t.op_idx.begin(), t.op_idx.end());
    s.alive = false;
    s.op_idx.clear();
  }

  const CorrelationAnalysis& ca_;
  std::vector<Draft> drafts_;
  std::vector<int> draft_of_;
};

}  // namespace

TranslatedQuery translate_ysmart(const PlanPtr& plan,
                                 const TranslatorProfile& profile,
                                 const std::string& scratch_prefix,
                                 const StatsCatalog* stats,
                                 obs::ObsContext* obs) {
  prune_plan(plan);
  PkSelectionOptions pk_options;
  pk_options.cost_based = profile.cost_based_pk;
  pk_options.stats = stats;
  pk_options.min_groups_for_subset_pk = profile.min_groups_for_subset_pk;
  std::optional<CorrelationAnalysis> ca;
  {
    obs::ScopedSpan detect(obs, "correlation-detect", "translate");
    ca.emplace(plan, pk_options);
    detect.arg("operations", static_cast<std::uint64_t>(ca->ops().size()));
  }
  if (ca->ops().empty()) {
    // Pure selection/projection on a base table: a single SP job.
    TranslatedQuery out;
    out.plan = plan;
    out.jobs.push_back(lower_scan_only(plan.get(), {scratch_prefix}));
    return out;
  }
  Merger merger(*ca);
  {
    obs::ScopedSpan merge(obs, "merge", "translate");
    if (profile.use_input_transit_correlation) merger.merge_input_transit();
    if (profile.use_job_flow_correlation) merger.merge_job_flow();
  }

  LoweringContext ctx{scratch_prefix};
  TranslatedQuery out;
  out.plan = plan;
  {
    obs::ScopedSpan lower(obs, "lower", "translate");
    for (const auto& ops : merger.ordered_drafts())
      out.jobs.push_back(
          lower_draft(ops, *ca, ctx, profile, /*use_chosen_pk=*/true));
    lower.arg("jobs", static_cast<std::uint64_t>(out.jobs.size()));
  }
  return out;
}

TranslatedQuery translate(const PlanPtr& plan, const TranslatorProfile& profile,
                          const std::string& scratch_prefix,
                          const StatsCatalog* stats, obs::ObsContext* obs) {
  if (profile.correlation_aware)
    return translate_ysmart(plan, profile, scratch_prefix, stats, obs);
  obs::ScopedSpan lower(obs, "lower", "translate");
  return translate_baseline(plan, profile, scratch_prefix);
}

}  // namespace ysmart
