// Correlation analysis (Section IV of the paper).
//
// Assigns every operation node its partition key — joins have a fixed PK;
// aggregations choose among candidates with the paper's heuristic
// ("select the one that can connect the maximal number of nodes that can
// have these correlations") — and answers the three correlation
// predicates:
//
//   Input Correlation (IC): the two operations' job input relation sets
//     are not disjoint.
//   Transit Correlation (TC): IC and the same partition key.
//   Job-Flow Correlation (JFC): an operation has the same partition key
//     as one of its child operations.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "plan/partition_key.h"
#include "plan/plan.h"
#include "stats/stats.h"

namespace ysmart {

/// How aggregation partition keys are chosen among the candidates.
struct PkSelectionOptions {
  /// When true (and stats are supplied), a correlation-friendly subset PK
  /// is vetoed if its estimated group count is below
  /// `min_groups_for_subset_pk` — merging would serialize the reduce
  /// phase on a handful of keys. This is the cost-based selection the
  /// paper leaves as future work (Section IV-A).
  bool cost_based = false;
  const StatsCatalog* stats = nullptr;
  std::uint64_t min_groups_for_subset_pk = 64;
};

struct OpInfo {
  PlanNode* op = nullptr;
  PartitionKey pk;  // chosen key; empty for SORT/SP/global aggregation
  /// Base tables this operation's own job would scan directly (its scan
  /// children), i.e. the job's input relation set minus intermediates.
  std::set<std::string> direct_tables;
};

class CorrelationAnalysis {
 public:
  explicit CorrelationAnalysis(const PlanPtr& root,
                               PkSelectionOptions pk_options = {});

  /// Operation nodes in post-order, with chosen PKs.
  const std::vector<OpInfo>& ops() const { return ops_; }

  int index_of(const PlanNode* op) const;  // -1 if not an operation
  const PartitionKey& pk_of(const PlanNode* op) const;

  bool input_correlation(int a, int b) const;
  bool transit_correlation(int a, int b) const;

  /// JFC: `parent` (an op index) has the same PK as `child` (an op index
  /// that is one of its direct child operations).
  bool job_flow_correlation(int parent, int child) const;

  /// True if op `a` is a (strict) ancestor of op `b` in the plan tree.
  bool is_ancestor(const PlanNode* a, const PlanNode* b) const;

  /// Nearest operation children of `op` (its direct child nodes that are
  /// operations; scans are skipped — they need no job).
  std::vector<PlanNode*> child_ops(const PlanNode* op) const;

  /// Human-readable report of PKs and pairwise correlations.
  std::string report() const;

 private:
  void choose_agg_pk(OpInfo& info);

  PkSelectionOptions pk_options_;
  std::vector<OpInfo> ops_;
  std::map<const PlanNode*, int> index_;
  std::map<const PlanNode*, const PlanNode*> parent_;
};

}  // namespace ysmart
