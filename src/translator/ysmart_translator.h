// The YSmart translator: correlation-aware job generation (Section V).
//
// Starting from the one-op-per-job drafts, two merging steps run:
//
//   Step 1 (Rule 1): independent jobs with input correlation AND transit
//     correlation merge into a common job (shared table scan, shared
//     tagged map output).
//
//   Step 2 (Rules 2-4, job-flow correlation):
//     Rule 2 — an AGGREGATION job whose only preceding job has the same
//       PK merges into it (evaluated in that job's reduce phase).
//     Rule 3 — a JOIN job with JFC to both preceding jobs merges into
//       their (already Rule-1-merged) common job's reduce phase.
//     Rule 4 — a JOIN job with JFC to exactly one preceding job merges
//       into it provided the other input is available first: either a
//       base table, or a job that can be ordered ahead (the left/right
//       child exchange of Section V-B).
//
// Both steps can be disabled independently through the profile, which is
// how the Fig. 9 ablation (one-op-per-job vs IC+TC-only vs all
// correlations) is produced.
#pragma once

#include "plan/plan.h"
#include "stats/stats.h"
#include "translator/jobspec.h"

namespace ysmart {

namespace obs {
struct ObsContext;
}

/// `stats` (optional) enables the profile's cost-based PK selection.
/// `obs` (optional) records correlation-detect / merge / lower spans.
TranslatedQuery translate_ysmart(const PlanPtr& plan,
                                 const TranslatorProfile& profile,
                                 const std::string& scratch_prefix,
                                 const StatsCatalog* stats = nullptr,
                                 obs::ObsContext* obs = nullptr);

/// Dispatch on profile.correlation_aware: YSmart-style or baseline.
TranslatedQuery translate(const PlanPtr& plan, const TranslatorProfile& profile,
                          const std::string& scratch_prefix,
                          const StatsCatalog* stats = nullptr,
                          obs::ObsContext* obs = nullptr);

}  // namespace ysmart
