// TranslatedJob: the translator-level description of one MapReduce job.
//
// Both translators (the Hive-style one-operation-to-one-job baseline and
// YSmart) emit a sequence of TranslatedJobs; the CMF (src/cmf) turns each
// into a runnable MRJobSpec. A TranslatedJob is exactly the paper's
// "common job" template (Section VI): a common mapper described by
// *emissions* (per input record, which key/value pairs to emit, with
// which visibility tags), and a common reducer described by *stages* (the
// merged reducers plus post-job computations, evaluated per key group).
// A plain single-operation job is simply the degenerate case with one
// emission per input and one stage.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/schema.h"
#include "mr/job.h"
#include "plan/partition_key.h"
#include "plan/plan.h"

namespace ysmart {

struct QueryMetrics;

/// How a translator behaves; models the systems compared in Section VII.
struct TranslatorProfile {
  std::string name;

  /// False = one-operation-to-one-job translation (Hive, Pig).
  bool correlation_aware = true;

  /// Step control for the Fig. 9 ablation: Rule 1 (input + transit
  /// correlation merging) and Rules 2-4 (job-flow correlation merging)
  /// can be toggled independently.
  bool use_input_transit_correlation = true;
  bool use_job_flow_correlation = true;

  /// Hash-based map-side partial aggregation for AGGREGATION jobs (the
  /// Hive optimization in the paper's footnote 2). Pig lacked it.
  bool map_side_agg = true;

  // Per-record constant-factor model (documented in DESIGN.md): Pig's
  // tuple layer was slower and produced larger intermediates; a
  // hand-coded reducer runs fewer generic dispatch layers than CMF and
  // short-circuits empty join sides (Section VII-C case 4).
  double map_cpu_multiplier = 1.0;
  double reduce_cpu_multiplier = 1.0;
  double intermediate_expansion = 1.0;

  /// Extra reduce-phase cost for JOIN jobs whose inputs are all
  /// temporarily-generated tables. The paper observed this on the
  /// production cluster only: "Hive cannot efficiently execute join with
  /// temporarily-generated inputs" — Q17's Job3 reduce took 721 s against
  /// a 53 s map (Section VII-F), while the same job was 4.5% of the query
  /// on the small cluster. Neutral (1.0) by default since the effect is
  /// scale-dependent; the Facebook-cluster benchmarks raise it to model
  /// the observed anomaly (see EXPERIMENTS.md). YSmart never generates
  /// such jobs — they are exactly what job-flow merging removes.
  double temp_input_join_penalty = 1.0;

  TagEncoding tag_encoding = TagEncoding::ExcludeList;

  /// Submit independent jobs concurrently (dependency waves) instead of
  /// the strict serial chain the paper's-era drivers used. Affects
  /// QueryMetrics::wall_time_s only; per-job work is unchanged. Off by
  /// default to match the systems under comparison.
  bool concurrent_job_submission = false;

  /// Opt-in cost-based aggregation-PK selection (extension; see
  /// PkSelectionOptions in translator/correlation.h). Requires table
  /// statistics, which Database collects automatically. Note the
  /// `ablation_tags` benchmark's finding: vetoing a low-cardinality PK
  /// trades merged-job serialization for extra materialization, which
  /// can easily be the worse side of the trade.
  bool cost_based_pk = false;
  std::uint64_t min_groups_for_subset_pk = 64;

  static TranslatorProfile ysmart();
  static TranslatorProfile hive();
  static TranslatorProfile pig();
  static TranslatorProfile hand_coded();

  /// MRShare-style sharing (paper Section VIII): merges scans and map
  /// outputs of independent jobs (Rule 1) but "since the job flow
  /// correlation is not considered, MRShare will not support
  /// batch-processing jobs that have data dependency, thus the number of
  /// jobs for executing a complex query is not always minimized."
  static TranslatorProfile mrshare();
};

/// One family of key/value pairs the common mapper emits per input
/// record of one file.
struct Emission {
  int input_file = 0;  // index into TranslatedJob::input_files
  int source_tag = 0;  // KeyValue.source for pairs of this emission

  /// Key/value expressions over the input file's schema. For scan-backed
  /// emissions the names are alias-qualified and resolve against the base
  /// schema by suffix; for intermediate files they are plain columns.
  std::vector<ExprPtr> key_exprs;
  std::vector<ExprPtr> value_exprs;
  Schema value_schema;

  /// The merged jobs reading this emission. A pair is emitted when at
  /// least one consumer's filter passes; consumers whose filter fails are
  /// listed in the pair's exclude tag (Section VI-A).
  struct Consumer {
    int consumer_id = 0;  // bit position in KeyValue.exclude, job-wide
    ExprPtr filter;       // over the input file schema; null = always
  };
  std::vector<Consumer> consumers;
};

/// One merged reducer or post-job computation in the common reducer.
struct Stage {
  const PlanNode* op = nullptr;  // Join / Agg / SP
  struct In {
    bool from_consumer = false;  // true: rows of a map emission consumer
    int index = 0;               // consumer_id or stage index
  };
  std::vector<In> inputs;  // Join: [left,right]; Agg/SP: [one]
  int output_index = -1;   // >= 0: stage result goes to outputs[i]
};

struct InputFile {
  std::string path;
  Schema schema;
};

struct TranslatedJob {
  enum class Kind { MapReduce, MapOnly, CombineAgg };

  std::string name;
  Kind kind = Kind::MapReduce;

  std::vector<InputFile> input_files;
  std::vector<Emission> emissions;
  std::vector<Stage> stages;
  std::vector<JobOutput> outputs;

  /// 0 = engine default. SORT jobs force 1 (single-reducer total order,
  /// as Hive's ORDER BY did in the paper's era).
  int num_reduce_tasks = 0;

  /// The key the job's map output is partitioned by (Section IV-A): the
  /// first merged operation's PK — a common job's merged ops share it by
  /// construction of the merging rules. Empty for map-only jobs, SORT
  /// jobs (single-reducer total order) and global aggregations. Carried
  /// for the plan-axis observability layer (obs/plan_view.h), which runs
  /// StatsCatalog::estimate_groups over it to predict reduce-group
  /// cardinality; execution never reads it.
  PartitionKey partition_key;

  /// Kind::CombineAgg — a single-AGG job using map-side partial
  /// aggregation (the mapper emits (group key, partial states)); the
  /// stage list still holds the AGG for schema/result purposes.
  const PlanNode* combine_agg_node = nullptr;

  int total_consumers() const;
  std::string describe() const;  // multi-line human-readable summary
};

/// A fully translated query: jobs in execution (topological) order; the
/// last job's first output is the query result.
struct TranslatedQuery {
  /// Owns the plan tree that every job's Stage::op / combine_agg_node
  /// raw pointers point into; must outlive any execution of the jobs.
  PlanPtr plan;
  std::vector<TranslatedJob> jobs;
  std::string result_path() const;
  std::string describe() const;

  /// Graphviz DOT of the job DAG: one cluster per job showing its merged
  /// stages, with inter-job edges through the DFS intermediates. With
  /// `metrics` from a run of this query, each job node is annotated with
  /// its simulated phase times and wire shuffle bytes (rows matched to
  /// jobs by name, in order).
  std::string to_dot(const QueryMetrics* metrics = nullptr) const;
};

}  // namespace ysmart
