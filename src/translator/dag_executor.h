// Executes a translated query on the simulated cluster.
//
// Jobs run serially in the order the translator produced (dependency
// order), matching how the Hive/Hadoop drivers of the paper's era chained
// jobs. Intermediates live in the DFS under the query's scratch prefix
// and are removed afterwards unless kept for inspection.
#pragma once

#include <memory>

#include "mr/engine.h"
#include "translator/jobspec.h"

namespace ysmart {

struct QueryRunResult {
  QueryMetrics metrics;
  std::shared_ptr<const Table> result;
};

/// Run all jobs of `query` on `engine`. The profile supplies the cost
/// knobs already baked into each job at CMF-build time.
QueryRunResult run_translated(const TranslatedQuery& query, Engine& engine,
                              const TranslatorProfile& profile,
                              bool keep_intermediates = false);

}  // namespace ysmart
