// Executes a translated query on the simulated cluster.
//
// Jobs run serially in the order the translator produced (dependency
// order), matching how the Hive/Hadoop drivers of the paper's era chained
// jobs. Intermediates live in the DFS under the query's scratch prefix
// and are removed afterwards unless kept for inspection.
#pragma once

#include <memory>

#include "mr/engine.h"
#include "translator/jobspec.h"

namespace ysmart {

struct QueryRunResult {
  QueryMetrics metrics;
  /// The query's result table, or null when metrics.failed(): a failed
  /// (DNF) query has no trustworthy result to hand out.
  std::shared_ptr<const Table> result;
};

/// Run the jobs of `query` on `engine` in dependency waves. The profile
/// supplies the cost knobs already baked into each job at CMF-build time.
/// Execution stops at the first wave containing a failed job: downstream
/// jobs are never scheduled and the returned result is null, with
/// metrics.failed() true (the paper's DNF behaviour).
QueryRunResult run_translated(const TranslatedQuery& query, Engine& engine,
                              const TranslatorProfile& profile,
                              bool keep_intermediates = false);

}  // namespace ysmart
