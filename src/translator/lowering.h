// Lowering: turn a group of plan operations that will share one
// MapReduce job (a "draft") into a TranslatedJob.
//
// Used by both translators: the baseline lowers every operation as its
// own single-op draft; YSmart lowers merged drafts. Lowering also
// performs the common-mapper output sharing of Section VI-A: emissions
// over the same base table with the same partition-key lineage are
// coalesced into one tagged emission whose value columns are the union of
// the consumers' needs, so transit-correlated operations ship each record
// once.
#pragma once

#include <string>
#include <vector>

#include "storage/catalog.h"
#include "translator/correlation.h"
#include "translator/jobspec.h"

namespace ysmart {

struct LoweringContext {
  std::string scratch_prefix;  // DFS directory for intermediate outputs
  /// Base tables live at table_path(name) in the DFS.
  static std::string table_path(const std::string& table) {
    return "/tables/" + table;
  }
  std::string op_output_path(const PlanNode* op) const {
    return scratch_prefix + "/" + op->label;
  }
};

/// Lower `ops` (plan operations merged into one job, in plan post-order)
/// into a TranslatedJob.
///
/// `use_chosen_pk`: partition aggregations by their correlation-chosen PK
/// (YSmart) instead of the full grouping key (one-op-per-job baseline).
/// Standalone combinable aggregations become CombineAgg jobs when the
/// profile enables map-side aggregation.
TranslatedJob lower_draft(const std::vector<PlanNode*>& ops,
                          const CorrelationAnalysis& ca,
                          const LoweringContext& ctx,
                          const TranslatorProfile& profile,
                          bool use_chosen_pk);

/// Lower a plan that is a bare base-table scan (a query with only
/// selection/projection): one map-only SELECTION-PROJECTION job.
TranslatedJob lower_scan_only(PlanNode* scan, const LoweringContext& ctx);

}  // namespace ysmart
