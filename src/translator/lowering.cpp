#include "translator/lowering.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/error.h"
#include "common/strings.h"
#include "exec/aggregates.h"

namespace ysmart {

namespace {

bool in_draft(const std::vector<PlanNode*>& ops, const PlanNode* n) {
  return std::find(ops.begin(), ops.end(), n) != ops.end();
}

/// Partition-key column names this op uses to partition `child`.
std::vector<std::string> partition_columns_for(const PlanNode* op,
                                               const PlanNode* child,
                                               const CorrelationAnalysis& ca,
                                               bool use_chosen_pk) {
  if (op->kind == PlanKind::Join) {
    return child == op->children[0].get() ? op->left_keys : op->right_keys;
  }
  if (op->kind == PlanKind::Agg) {
    if (use_chosen_pk) {
      const auto& pk = ca.pk_of(op);
      return pk.columns;  // may be empty for global aggregation
    }
    return op->group_cols;
  }
  // SORT (single-reducer) and SP have no partition key.
  return {};
}

/// True when a scan's projections are all plain column refs (the normal
/// post-pruning form), which makes its emission eligible for sharing.
bool plain_projection(const PlanNode& scan) {
  for (const auto& p : scan.projections)
    if (p->kind != ExprKind::ColumnRef) return false;
  return true;
}

/// Base-table column names (unqualified) of a scan's projected outputs.
std::vector<std::string> base_value_columns(const PlanNode& scan) {
  std::vector<std::string> out;
  if (scan.projections.empty()) {
    for (const auto& c : scan.output_schema.columns())
      out.push_back(unqualify(c.name));
  } else {
    for (const auto& p : scan.projections) out.push_back(unqualify(p->column));
  }
  return out;
}

struct PendingScanStream {
  PlanNode* scan = nullptr;
  PlanNode* consumer_op = nullptr;
  std::vector<std::string> key_cols_base;    // unqualified key column names
  std::vector<std::string> value_cols_base;  // unqualified value columns
  int stage_index = 0;
  int input_slot = 0;  // which Stage::inputs entry this feeds
};

}  // namespace

TranslatedJob lower_draft(const std::vector<PlanNode*>& ops,
                          const CorrelationAnalysis& ca,
                          const LoweringContext& ctx,
                          const TranslatorProfile& profile,
                          bool use_chosen_pk) {
  check(!ops.empty(), "lower_draft: empty draft");
  TranslatedJob job;
  {
    std::vector<std::string> labels;
    for (const auto* op : ops) labels.push_back(op->label);
    job.name = join(labels, "+");
  }

  // ---- single standalone aggregation may use the combiner fast path ----
  if (ops.size() == 1 && ops[0]->kind == PlanKind::Agg &&
      profile.map_side_agg && combinable(*ops[0])) {
    PlanNode* agg = ops[0];
    PlanNode* child = agg->children[0].get();
    job.kind = TranslatedJob::Kind::CombineAgg;
    job.combine_agg_node = agg;
    // The combiner mapper keys its partial states by the full group-cols
    // tuple (see cmf/common_job.cpp), regardless of any chosen subset PK.
    job.partition_key = agg_full_partition_key(*agg);
    InputFile f;
    if (child->kind == PlanKind::Scan) {
      f.path = LoweringContext::table_path(child->table);
    } else {
      f.path = ctx.op_output_path(child);
    }
    f.schema = child->output_schema;  // advisory
    job.input_files.push_back(std::move(f));
    Stage st;
    st.op = agg;
    st.inputs.push_back(Stage::In{true, 0});
    st.output_index = 0;
    job.stages.push_back(st);
    job.outputs.push_back(JobOutput{ctx.op_output_path(agg), agg->output_schema});
    return job;
  }

  // ---- map stages onto indices ----
  std::map<const PlanNode*, int> stage_of;
  for (std::size_t i = 0; i < ops.size(); ++i)
    stage_of[ops[i]] = static_cast<int>(i);

  // Sorting / pure SP jobs run map-only or single-reducer.
  const bool has_sort =
      std::any_of(ops.begin(), ops.end(),
                  [](const PlanNode* n) { return n->kind == PlanKind::Sort; });
  if (has_sort) job.num_reduce_tasks = 1;
  if (ops.size() == 1 && ops[0]->kind == PlanKind::SP)
    job.kind = TranslatedJob::Kind::MapOnly;

  std::map<std::string, int> file_index;  // path -> input_files idx
  auto intern_file = [&](const std::string& path, const Schema& schema) {
    auto it = file_index.find(path);
    if (it != file_index.end()) return it->second;
    const int idx = static_cast<int>(job.input_files.size());
    job.input_files.push_back(InputFile{path, schema});
    file_index[path] = idx;
    return idx;
  };

  int next_consumer = 0;
  std::vector<PendingScanStream> scan_streams;

  // ---- build stages; collect scan streams for sharing ----
  for (std::size_t i = 0; i < ops.size(); ++i) {
    PlanNode* op = ops[i];
    // Record the job's partition key from the first keyed op: every merged
    // op shares the PK by construction of the merging rules, so first wins.
    if (job.partition_key.empty()) {
      if (op->kind == PlanKind::Join) {
        job.partition_key = join_partition_key(*op);
      } else if (op->kind == PlanKind::Agg) {
        job.partition_key =
            use_chosen_pk ? ca.pk_of(op) : agg_full_partition_key(*op);
      }
    }
    Stage st;
    st.op = op;
    for (std::size_t c = 0; c < op->children.size(); ++c) {
      PlanNode* child = op->children[c].get();
      if (child->is_operation() && in_draft(ops, child)) {
        st.inputs.push_back(Stage::In{false, stage_of.at(child)});
        continue;
      }
      const auto key_cols = partition_columns_for(op, child, ca, use_chosen_pk);
      if (child->kind == PlanKind::Scan) {
        // Scan-backed stream; deferred so shared scans can coalesce.
        PendingScanStream ps;
        ps.scan = child;
        ps.consumer_op = op;
        for (const auto& k : key_cols) ps.key_cols_base.push_back(unqualify(k));
        ps.value_cols_base = base_value_columns(*child);
        ps.stage_index = static_cast<int>(i);
        ps.input_slot = static_cast<int>(st.inputs.size());
        st.inputs.push_back(Stage::In{true, -1});  // patched later
        scan_streams.push_back(std::move(ps));
        continue;
      }
      // Intermediate input: output of a job that ran earlier.
      Emission e;
      e.input_file = intern_file(ctx.op_output_path(child), child->output_schema);
      e.source_tag = static_cast<int>(job.emissions.size());
      for (const auto& k : key_cols) e.key_exprs.push_back(Expr::make_column(k));
      // Identity value: the whole intermediate row.
      for (const auto& col : child->output_schema.columns())
        e.value_exprs.push_back(Expr::make_column(col.name));
      e.value_schema = child->output_schema;
      e.consumers.push_back(Emission::Consumer{next_consumer, nullptr});
      st.inputs.push_back(Stage::In{true, next_consumer});
      ++next_consumer;
      job.emissions.push_back(std::move(e));
    }
    job.stages.push_back(std::move(st));
  }

  // ---- coalesce shared scans (input + transit correlation, VI-A) ----
  // Group scan streams by (table, key columns); within a group the value
  // columns become the union and each consumer gets a visibility filter.
  std::map<std::string, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < scan_streams.size(); ++i) {
    const auto& ps = scan_streams[i];
    std::string sig = ps.scan->table + "|" + join(ps.key_cols_base, ",");
    if (!plain_projection(*ps.scan) || ps.scan->projections.empty())
      sig += "|nocoalesce" + std::to_string(i);
    groups[sig].push_back(i);
  }

  for (auto& [sig, members] : groups) {
    (void)sig;
    const PlanNode* first_scan = scan_streams[members[0]].scan;
    const std::string table = first_scan->table;

    // Union of needed base columns, in base-schema order.
    std::vector<std::string> union_cols;
    {
      std::set<std::string> seen;
      for (auto m : members)
        for (const auto& c : scan_streams[m].value_cols_base)
          if (seen.insert(c).second) union_cols.push_back(c);
      // Keep deterministic order: by first appearance is fine and stable.
    }

    Emission e;
    e.input_file = intern_file(LoweringContext::table_path(table),
                               Schema{});  // schema filled by executor
    e.source_tag = static_cast<int>(job.emissions.size());
    for (const auto& k : scan_streams[members[0]].key_cols_base)
      e.key_exprs.push_back(Expr::make_column(k));
    for (const auto& c : union_cols) e.value_exprs.push_back(Expr::make_column(c));

    for (auto m : members) {
      auto& ps = scan_streams[m];
      // Rewrite the scan's output to the union so its consumer stage (and
      // everything bound against the scan's schema upstream) sees the
      // coalesced row layout, qualified with this instance's alias.
      Schema new_schema;
      std::vector<Lineage> new_lineage;
      std::vector<ExprPtr> new_proj;
      for (const auto& c : union_cols) {
        const std::string qual = ps.scan->alias + "." + c;
        // Take the column type from whichever member scan still projects
        // it (types are advisory; Values are self-describing at runtime).
        ValueType t = ValueType::Double;
        for (auto m2 : members) {
          if (auto idx = scan_streams[m2].scan->output_schema.find(
                  scan_streams[m2].scan->alias + "." + c)) {
            t = scan_streams[m2].scan->output_schema.at(*idx).type;
            break;
          }
        }
        new_schema.add(qual, t);
        new_lineage.push_back(Lineage{ColumnId{table, c}});
        new_proj.push_back(Expr::make_column(qual));
      }
      ps.scan->output_schema = new_schema;
      ps.scan->output_lineage = new_lineage;
      ps.scan->projections = new_proj;

      e.consumers.push_back(Emission::Consumer{next_consumer, ps.scan->filter});
      job.stages[static_cast<std::size_t>(ps.stage_index)]
          .inputs[static_cast<std::size_t>(ps.input_slot)]
          .index = next_consumer;
      ++next_consumer;
    }
    e.value_schema = Schema{};  // per-consumer views live on the scan nodes
    job.emissions.push_back(std::move(e));
  }

  // Coalescing may have widened scan output schemas; refresh every
  // identity-shaped ancestor in the draft (post-order, so children first)
  // or later stages would bind column indices against stale layouts.
  for (PlanNode* op : ops) {
    if (op->kind == PlanKind::Join && op->projections.empty()) {
      op->output_schema = Schema::concat(op->children[0]->output_schema,
                                         op->children[1]->output_schema);
      op->output_lineage = op->children[0]->output_lineage;
      op->output_lineage.insert(op->output_lineage.end(),
                                op->children[1]->output_lineage.begin(),
                                op->children[1]->output_lineage.end());
      const Schema& ls = op->children[0]->output_schema;
      const Schema& rs = op->children[1]->output_schema;
      for (std::size_t i = 0; i < op->left_keys.size(); ++i) {
        const auto li = ls.index_of(op->left_keys[i]);
        const auto ri = rs.index_of(op->right_keys[i]);
        Lineage merged = op->output_lineage[li];
        const Lineage& rl = op->output_lineage[ls.size() + ri];
        merged.insert(rl.begin(), rl.end());
        op->output_lineage[li] = merged;
        op->output_lineage[ls.size() + ri] = merged;
      }
    } else if ((op->kind == PlanKind::SP && op->projections.empty()) ||
               op->kind == PlanKind::Sort) {
      op->output_schema = op->children[0]->output_schema;
      op->output_lineage = op->children[0]->output_lineage;
    }
  }

  // The visibility tag is a 32-bit exclude mask; a common job can carry
  // at most 32 merged consumers (far beyond any query the paper's rules
  // produce, but fail loudly rather than overflow).
  check(next_consumer <= 32, "merged job exceeds 32 consumers");

  // ---- outputs: ops whose plan parent is outside the draft ----
  for (std::size_t i = 0; i < ops.size(); ++i) {
    PlanNode* op = ops[i];
    bool parent_inside = false;
    for (const PlanNode* other : ops) {
      for (const auto& c : other->children)
        if (c.get() == op) parent_inside = true;
    }
    if (!parent_inside) {
      job.stages[i].output_index = static_cast<int>(job.outputs.size());
      job.outputs.push_back(
          JobOutput{ctx.op_output_path(op), op->output_schema});
    }
  }
  return job;
}

TranslatedJob lower_scan_only(PlanNode* scan, const LoweringContext& ctx) {
  check(scan->kind == PlanKind::Scan, "lower_scan_only: not a scan");
  TranslatedJob job;
  job.name = "SP-" + scan->table;
  job.kind = TranslatedJob::Kind::MapOnly;
  job.input_files.push_back(
      InputFile{LoweringContext::table_path(scan->table), Schema{}});
  Stage st;
  st.op = scan;
  st.inputs.push_back(Stage::In{true, 0});
  st.output_index = 0;
  job.stages.push_back(st);
  job.outputs.push_back(
      JobOutput{ctx.scratch_prefix + "/" + job.name, scan->output_schema});
  return job;
}

}  // namespace ysmart
