#include "translator/dag_executor.h"

#include <algorithm>
#include <set>

#include "cmf/common_job.h"
#include "common/error.h"
#include "common/strings.h"
#include "obs/obs.h"

namespace ysmart {

QueryRunResult run_translated(const TranslatedQuery& query, Engine& engine,
                              const TranslatorProfile& profile,
                              bool keep_intermediates) {
  QueryRunResult out;
  const std::string result_path = query.result_path();
  std::set<std::string> scratch_paths;

  // Group jobs into dependency waves: a job joins the wave once all its
  // inputs exist. Under serial submission (the default, matching the
  // paper's drivers) every wave has one job and wall time equals the sum;
  // with concurrent_job_submission a wave's elapsed time is its slowest
  // job (jobs still execute one-by-one in the simulator — only the
  // modeled timeline overlaps).
  std::set<std::string> available;
  for (const auto& p : engine.dfs().list()) available.insert(p);
  std::vector<std::size_t> pending(query.jobs.size());
  for (std::size_t i = 0; i < pending.size(); ++i) pending[i] = i;

  bool any_failed = false;
  std::size_t wave_idx = 0;
  while (!pending.empty() && !any_failed) {
    std::vector<std::size_t> wave;
    for (std::size_t i : pending) {
      bool ready = true;
      for (const auto& in : query.jobs[i].input_files)
        if (!available.count(in.path)) ready = false;
      if (ready) {
        wave.push_back(i);
        if (!profile.concurrent_job_submission) break;  // serial: one job
      }
    }
    check(!wave.empty(), "translated query has a dependency cycle");

    obs::ObsContext* obs = engine.obs();
    obs::ScopedSpan wave_span(obs, strf("wave:%zu", wave_idx), "wave");
    // Stamp this wave's jobs in the sample store: the analyzer regroups
    // them by wave id to reproduce the wall_time_s fold below exactly.
    if (obs) {
      obs->samples.set_current_wave(static_cast<int>(wave_idx));
      obs->progress.begin_wave(wave_idx, wave.size());
      obs->events.emit(obs::EventLevel::Info, obs::EventCategory::Schedule,
                       "wave-start", obs->tracer.sim_now(),
                       {{"wave", static_cast<std::uint64_t>(wave_idx)},
                        {"jobs", static_cast<std::uint64_t>(wave.size())}});
    }
    ++wave_idx;
    // Jobs in one wave run concurrently on the modeled timeline: every
    // job in it starts at the wave's simulated start, and the wave ends
    // when its slowest job does. The engine advances the tracer's sim
    // cursor past each job, so rewind it to the wave start per job and
    // place it at wave start + wave elapsed afterwards.
    const double wave_sim0 = obs ? obs->tracer.sim_now() : 0.0;
    double wave_wall = 0;
    for (std::size_t i : wave) {
      const auto& job = query.jobs[i];
      MRJobSpec spec = build_common_job(job, profile, engine.dfs());
      if (obs) obs->tracer.set_sim_now(wave_sim0);
      JobMetrics m = engine.run(spec);
      wave_wall = std::max(wave_wall, m.total_time_s());
      any_failed |= m.failed;
      out.metrics.jobs.push_back(std::move(m));
      for (const auto& o : job.outputs) {
        available.insert(o.path);
        if (o.path != result_path) scratch_paths.insert(o.path);
      }
    }
    out.metrics.wall_time_s += wave_wall;
    if (obs) {
      wave_span.sim(wave_sim0, wave_wall);
      wave_span.arg("jobs", static_cast<std::uint64_t>(wave.size()));
      obs->tracer.set_sim_now(wave_sim0 + wave_wall);
      obs->events.emit(obs::EventLevel::Info, obs::EventCategory::Schedule,
                       "wave-done", wave_sim0 + wave_wall,
                       {{"wave", static_cast<std::uint64_t>(wave_idx - 1)},
                        {"jobs", static_cast<std::uint64_t>(wave.size())},
                        {"wave_sim_s", wave_wall}});
      if (any_failed)
        obs->events.emit(obs::EventLevel::Error, obs::EventCategory::Schedule,
                         "query-abort", wave_sim0 + wave_wall,
                         {{"pending_jobs", static_cast<std::uint64_t>(
                               pending.size() - wave.size())}});
    }
    std::vector<std::size_t> rest;
    for (std::size_t i : pending)
      if (std::find(wave.begin(), wave.end(), i) == wave.end())
        rest.push_back(i);
    pending = std::move(rest);
  }
  if (obs::ObsContext* obs = engine.obs())
    obs->samples.set_wall_time(out.metrics.wall_time_s);

  // A failed job (DNF) aborts the query: jobs still pending are never
  // scheduled and its outputs — present in the DFS only so standalone
  // metrics remain checkable — are not consumed as a result. This is
  // what the paper's DNF rows report (e.g. Pig on Q-CSA, Section VII).
  if (!any_failed) out.result = engine.dfs().file(result_path).table;
  if (!keep_intermediates) {
    for (const auto& p : scratch_paths)
      if (engine.dfs().exists(p)) engine.dfs().remove(p);
    if (engine.dfs().exists(result_path)) engine.dfs().remove(result_path);
  }
  return out;
}

}  // namespace ysmart
