#include "translator/baseline.h"

#include "plan/prune.h"
#include "translator/correlation.h"
#include "translator/lowering.h"

namespace ysmart {

TranslatedQuery translate_baseline(const PlanPtr& plan,
                                   const TranslatorProfile& profile,
                                   const std::string& scratch_prefix) {
  prune_plan(plan);
  CorrelationAnalysis ca(plan);
  LoweringContext ctx{scratch_prefix};

  TranslatedQuery out;
  out.plan = plan;
  if (ca.ops().empty()) {
    out.jobs.push_back(lower_scan_only(plan.get(), ctx));
    return out;
  }
  for (const auto& info : ca.ops()) {
    out.jobs.push_back(
        lower_draft({info.op}, ca, ctx, profile, /*use_chosen_pk=*/false));
  }
  return out;
}

}  // namespace ysmart
