#include "translator/jobspec.h"

#include <map>

#include "common/error.h"
#include "common/strings.h"
#include "mr/metrics.h"

namespace ysmart {

TranslatorProfile TranslatorProfile::ysmart() {
  TranslatorProfile p;
  p.name = "ysmart";
  return p;
}

TranslatorProfile TranslatorProfile::hive() {
  TranslatorProfile p;
  p.name = "hive";
  p.correlation_aware = false;
  return p;
}

TranslatorProfile TranslatorProfile::pig() {
  TranslatorProfile p;
  p.name = "pig";
  p.correlation_aware = false;
  p.map_side_agg = false;
  p.map_cpu_multiplier = 1.25;
  p.reduce_cpu_multiplier = 1.4;
  p.intermediate_expansion = 2.6;
  return p;
}

TranslatorProfile TranslatorProfile::mrshare() {
  TranslatorProfile p;
  p.name = "mrshare";
  p.use_job_flow_correlation = false;
  return p;
}

TranslatorProfile TranslatorProfile::hand_coded() {
  TranslatorProfile p;
  p.name = "hand-coded";
  // Same job structure as YSmart; the reduce function is specialized
  // instead of dispatched through CMF interfaces and short-circuits keys
  // whose driving input is empty (Section VII-C, case 4).
  p.reduce_cpu_multiplier = 0.5;
  return p;
}

int TranslatedJob::total_consumers() const {
  int n = 0;
  for (const auto& e : emissions) n += static_cast<int>(e.consumers.size());
  return n;
}

std::string TranslatedJob::describe() const {
  std::string out = "job " + name + " [";
  switch (kind) {
    case Kind::MapReduce: out += "MR"; break;
    case Kind::MapOnly: out += "MAP-ONLY"; break;
    case Kind::CombineAgg: out += "AGG+combine"; break;
  }
  out += "]\n";
  for (const auto& f : input_files) out += "  input: " + f.path + "\n";
  for (const auto& e : emissions) {
    out += strf("  emission tag=%d file=%d key=(", e.source_tag, e.input_file);
    for (std::size_t i = 0; i < e.key_exprs.size(); ++i) {
      if (i) out += ",";
      out += e.key_exprs[i]->to_string();
    }
    out += strf(") consumers=%zu\n", e.consumers.size());
  }
  for (std::size_t i = 0; i < stages.size(); ++i) {
    out += "  stage " + std::to_string(i) + ": " + stages[i].op->to_string();
    out += " <- ";
    for (std::size_t j = 0; j < stages[i].inputs.size(); ++j) {
      if (j) out += ", ";
      const auto& in = stages[i].inputs[j];
      out += (in.from_consumer ? "consumer#" : "stage#") + std::to_string(in.index);
    }
    if (stages[i].output_index >= 0)
      out += " -> output#" + std::to_string(stages[i].output_index);
    out += "\n";
  }
  for (const auto& o : outputs) out += "  output: " + o.path + "\n";
  return out;
}

std::string TranslatedQuery::result_path() const {
  check(!jobs.empty(), "translated query has no jobs");
  check(!jobs.back().outputs.empty(), "final job has no outputs");
  return jobs.back().outputs[0].path;
}

std::string TranslatedQuery::describe() const {
  std::string out = strf("translated query: %zu job(s)\n", jobs.size());
  for (const auto& j : jobs) out += j.describe();
  return out;
}

namespace {
std::string dot_escape(std::string s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}
}  // namespace

std::string TranslatedQuery::to_dot(const QueryMetrics* metrics) const {
  std::string out = "digraph jobs {\n  rankdir=LR;\n  node [shape=box];\n";
  // One cluster per job; a synthetic node per input/output path.
  std::map<std::string, int> path_node;
  int counter = 0;
  auto path_id = [&](const std::string& path) {
    auto it = path_node.find(path);
    if (it != path_node.end()) return it->second;
    const int id = counter++;
    out += strf("  p%d [shape=ellipse, label=\"%s\"];\n", id,
                dot_escape(path).c_str());
    path_node[path] = id;
    return id;
  };
  // Metrics rows are matched to jobs by name, first unused row wins:
  // JobMetrics.job_name is exactly TranslatedJob.name, but baseline
  // translations can repeat a name (several JOIN jobs), and a failed
  // query has fewer rows than jobs.
  std::vector<bool> used(metrics ? metrics->jobs.size() : 0, false);
  auto metrics_for = [&](const std::string& name) -> const JobMetrics* {
    if (!metrics) return nullptr;
    for (std::size_t i = 0; i < metrics->jobs.size(); ++i)
      if (!used[i] && metrics->jobs[i].job_name == name) {
        used[i] = true;
        return &metrics->jobs[i];
      }
    return nullptr;
  };
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const auto& job = jobs[j];
    out += strf("  subgraph cluster_%zu {\n    label=\"%s\";\n", j,
                dot_escape(job.name).c_str());
    out += strf("    j%zu [label=\"", j);
    for (std::size_t s = 0; s < job.stages.size(); ++s) {
      if (s) out += "\\n";
      out += dot_escape(job.stages[s].op->label);
    }
    if (job.stages.empty()) out += dot_escape(job.name);
    if (const JobMetrics* m = metrics_for(job.name)) {
      out += strf("\\nmap %.1fs  reduce %.1fs\\nshuffle %.1f MB",
                  m->map_time_s, m->reduce_time_s,
                  static_cast<double>(m->shuffle_bytes_wire) / (1024.0 * 1024));
      if (m->failed) out += "\\nFAILED";
    }
    out += "\"];\n  }\n";
    for (const auto& in : job.input_files)
      out += strf("  p%d -> j%zu;\n", path_id(in.path), j);
    for (const auto& o : job.outputs)
      out += strf("  j%zu -> p%d;\n", j, path_id(o.path));
  }
  out += "}\n";
  return out;
}

}  // namespace ysmart
