// Baseline translator: the one-operation-to-one-job translation the paper
// attributes to Hive and Pig (Section III). The plan tree is traversed in
// post-order and every operation node becomes its own MapReduce job,
// chained through DFS intermediates. Selection/projection on base tables
// is folded into the consuming job's map phase; aggregation jobs may use
// hash-based map-side partial aggregation when the profile allows it.
#pragma once

#include "plan/plan.h"
#include "translator/jobspec.h"

namespace ysmart {

/// Translate `plan` one-op-per-job. `scratch_prefix` namespaces the
/// intermediate DFS paths of this query execution.
TranslatedQuery translate_baseline(const PlanPtr& plan,
                                   const TranslatorProfile& profile,
                                   const std::string& scratch_prefix);

}  // namespace ysmart
