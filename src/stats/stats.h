// Table statistics: row counts and per-column distinct-value estimates.
//
// The paper's YSmart chose aggregation partition keys with a pure
// connectivity heuristic because it lacked statistics (Section IV-A:
// "Currently YSmart does not seek a solution based on execution cost
// estimations due to the lack of statistics information of data sets").
// This module supplies that missing piece as an opt-in extension: stats
// are estimated from the loaded tables, column identities travel through
// the plan via lineage, and the translator can veto a
// correlation-friendly PK whose cardinality is too low to parallelize
// the reduce phase (see TranslatorProfile::cost_based_pk).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "plan/partition_key.h"
#include "storage/table.h"

namespace ysmart {

struct TableStats {
  std::uint64_t rows = 0;
  /// Distinct non-NULL values per column (exact up to the sample cap).
  std::map<std::string, std::uint64_t> column_ndv;
  /// True when estimate()'s `sample_rows` cap truncated the scan. Sampled
  /// NDVs carry a systematic *underestimate* bias for high-cardinality
  /// columns: a column whose distinct count exceeds the sample can show at
  /// most `sample_rows` distinct values, and the linear extrapolation
  /// below only corrects columns that nearly saturate the sample
  /// (ratio > 0.95). Mid-cardinality columns (many distinct values, each
  /// appearing a handful of times) keep their raw in-sample count, which
  /// can undershoot the true NDV by up to rows/sample_rows. The plan view
  /// (obs/plan_view.h) surfaces this flag so group-count predictions
  /// derived from truncated scans are marked as sampled.
  bool sampled = false;
};

class StatsCatalog {
 public:
  void put(const std::string& table, TableStats stats);

  bool has(const std::string& table) const;
  const TableStats* find(const std::string& table) const;

  /// NDV of one base column; nullopt when the table or column is unknown.
  std::optional<std::uint64_t> ndv(const ColumnId& id) const;

  /// Estimated number of distinct composite keys a PartitionKey produces:
  /// the product of per-part NDVs (each part takes the smallest NDV among
  /// its alias class — an equi-join key cannot exceed either side),
  /// saturating, with unknown columns treated as unbounded.
  std::uint64_t estimate_groups(const PartitionKey& pk) const;

  /// Scan `t` (up to `sample_rows` rows) and estimate its statistics.
  static TableStats estimate(const Table& t, std::size_t sample_rows = 100000);

 private:
  std::map<std::string, TableStats> tables_;
};

}  // namespace ysmart
