#include "stats/stats.h"

#include <limits>
#include <unordered_set>

#include "common/strings.h"

namespace ysmart {

void StatsCatalog::put(const std::string& table, TableStats stats) {
  tables_[to_lower(table)] = std::move(stats);
}

bool StatsCatalog::has(const std::string& table) const {
  return tables_.count(to_lower(table)) > 0;
}

const TableStats* StatsCatalog::find(const std::string& table) const {
  auto it = tables_.find(to_lower(table));
  return it == tables_.end() ? nullptr : &it->second;
}

std::optional<std::uint64_t> StatsCatalog::ndv(const ColumnId& id) const {
  const TableStats* t = find(id.table);
  if (!t) return std::nullopt;
  auto it = t->column_ndv.find(to_lower(id.column));
  if (it == t->column_ndv.end()) return std::nullopt;
  return it->second;
}

std::uint64_t StatsCatalog::estimate_groups(const PartitionKey& pk) const {
  constexpr std::uint64_t kUnbounded =
      std::numeric_limits<std::uint64_t>::max();
  std::uint64_t groups = 1;
  for (const auto& part : pk.parts) {
    // Smallest NDV across the alias class: a join key has at most as many
    // distinct values as its most selective side.
    std::uint64_t part_ndv = kUnbounded;
    for (const auto& id : part) {
      if (auto n = ndv(id)) part_ndv = std::min(part_ndv, *n);
    }
    if (part_ndv == kUnbounded) return kUnbounded;  // computed/unknown
    if (part_ndv == 0) part_ndv = 1;
    if (groups > kUnbounded / part_ndv) return kUnbounded;  // saturate
    groups *= part_ndv;
  }
  return groups;
}

TableStats StatsCatalog::estimate(const Table& t, std::size_t sample_rows) {
  TableStats stats;
  stats.rows = t.row_count();
  const std::size_t n = std::min(sample_rows, t.row_count());
  stats.sampled = n < t.row_count();  // NDVs below may underestimate
  std::vector<std::unordered_set<std::size_t>> hashes(t.schema().size());
  for (std::size_t i = 0; i < n; ++i) {
    const Row& r = t.rows()[i];
    for (std::size_t c = 0; c < r.size(); ++c)
      if (!r[c].is_null()) hashes[c].insert(r[c].hash());
  }
  for (std::size_t c = 0; c < t.schema().size(); ++c) {
    // Extrapolate linearly when sampled; exact when the full table fit.
    std::uint64_t ndv = hashes[c].size();
    if (n < t.row_count() && n > 0) {
      const double ratio = static_cast<double>(hashes[c].size()) /
                           static_cast<double>(n);
      // A column saturating its sample is likely near-unique overall.
      if (ratio > 0.95)
        ndv = static_cast<std::uint64_t>(ratio *
                                         static_cast<double>(t.row_count()));
    }
    stats.column_ndv[t.schema().at(c).name] = ndv;
  }
  return stats;
}

}  // namespace ysmart
